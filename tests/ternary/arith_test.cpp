// Extended arithmetic: the trit-serial multiply reference (the algorithm
// behind the translator's __mul routine) and host-side division helpers.
#include "ternary/arith.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ternary/random.hpp"

namespace art9::ternary {
namespace {

TEST(Multiply, MatchesWrappedIntegerProduct) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 5000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    EXPECT_EQ(multiply(a, b).to_int(),
              Word9::from_int_wrapped(a.to_int() * b.to_int()).to_int());
  }
}

TEST(Multiply, Identities) {
  const Word9 one = Word9::from_int(1);
  const Word9 zero;
  std::mt19937_64 rng(18);
  for (int i = 0; i < 500; ++i) {
    const Word9 w = random_word<9>(rng);
    EXPECT_EQ(multiply(w, one), w);
    EXPECT_EQ(multiply(one, w), w);
    EXPECT_TRUE(multiply(w, zero).is_zero());
    EXPECT_EQ(multiply(w, -one).to_int(), -w.to_int());
  }
}

TEST(Multiply, Commutative) {
  std::mt19937_64 rng(19);
  for (int i = 0; i < 1000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    EXPECT_EQ(multiply(a, b), multiply(b, a));
  }
}

TEST(Multiply, ShiftIsMultiplyByPowerOfThree) {
  std::mt19937_64 rng(20);
  const Word9 three = Word9::from_int(3);
  for (int i = 0; i < 500; ++i) {
    const Word9 w = random_word<9>(rng);
    EXPECT_EQ(multiply(w, three), w.shl(1));
  }
}

TEST(DivModTrunc, Basics) {
  EXPECT_EQ(divmod_trunc(7, 2).quotient, 3);
  EXPECT_EQ(divmod_trunc(7, 2).remainder, 1);
  EXPECT_EQ(divmod_trunc(-7, 2).quotient, -3);
  EXPECT_EQ(divmod_trunc(-7, 2).remainder, -1);
  EXPECT_THROW((void)divmod_trunc(1, 0), std::domain_error);
}

TEST(DivPow3Nearest, MatchesShr) {
  std::mt19937_64 rng(21);
  for (int i = 0; i < 2000; ++i) {
    const Word9 w = random_word<9>(rng);
    for (std::size_t k = 0; k <= 9; ++k) {
      EXPECT_EQ(div_pow3_nearest(w.to_int(), k), w.shr(k).to_int())
          << "v=" << w.to_int() << " k=" << k;
    }
  }
}

TEST(PopcountNonzero, CountsNonzeroTrits) {
  EXPECT_EQ(popcount_nonzero(Word9{}), 0);
  EXPECT_EQ(popcount_nonzero(Word9::from_int(1)), 1);
  EXPECT_EQ(popcount_nonzero(Word9::from_int(4)), 2);   // ++ = 3+1
  EXPECT_EQ(popcount_nonzero(Word9::filled(kTritN)), 9);
}

}  // namespace
}  // namespace art9::ternary
