// The unbalanced (3's-complement) alternative: correctness of the model
// and the negation-cost contrast with the balanced system (paper §II-A).
#include "ternary/unbalanced.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ternary/random.hpp"

namespace art9::ternary {
namespace {

TEST(Unbalanced, RangeIsSymmetricForOddRadix) {
  // Unlike two's complement, an odd radix yields a symmetric range.
  EXPECT_EQ(UnbalancedWord9::kMaxValue, 9841);
  EXPECT_EQ(UnbalancedWord9::kMinValue, -9841);
  EXPECT_EQ(UnbalancedWord9::from_int(-1).to_unsigned(), 19682);
  EXPECT_EQ(UnbalancedWord9::from_int(-9841).to_unsigned(), 9842);
}

TEST(Unbalanced, SignDetectionNeedsMagnitudeCompare) {
  // The most significant digit alone cannot decide the sign: +9841 and
  // -9841 share MSD 1.
  EXPECT_EQ(UnbalancedWord9::from_int(9841).digit(8), 1);
  EXPECT_EQ(UnbalancedWord9::from_int(-9841).digit(8), 1);
  EXPECT_FALSE(UnbalancedWord9::from_int(9841).is_negative());
  EXPECT_TRUE(UnbalancedWord9::from_int(-9841).is_negative());
  EXPECT_FALSE(UnbalancedWord9::from_int(0).is_negative());
}

TEST(Unbalanced, SignedRoundTripExhaustive) {
  for (int64_t v = UnbalancedWord9::kMinValue; v <= UnbalancedWord9::kMaxValue; v += 7) {
    EXPECT_EQ(UnbalancedWord9::from_int(v).to_int(), v);
  }
  EXPECT_EQ(UnbalancedWord9::from_int(UnbalancedWord9::kMinValue).to_int(),
            UnbalancedWord9::kMinValue);
  EXPECT_THROW((void)UnbalancedWord9::from_int(9842), std::out_of_range);
  EXPECT_THROW((void)UnbalancedWord9::from_int(-9842), std::out_of_range);
}

TEST(Unbalanced, UnsignedRoundTrip) {
  for (int64_t v = 0; v < UnbalancedWord9::kStates; v += 97) {
    EXPECT_EQ(UnbalancedWord9::from_unsigned(v).to_unsigned(), v);
  }
}

TEST(Unbalanced, AdditionMatchesIntegers) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<int64_t> dist(-4800, 4800);
  for (int i = 0; i < 3000; ++i) {
    const int64_t a = dist(rng);
    const int64_t b = dist(rng);
    EXPECT_EQ((UnbalancedWord9::from_int(a) + UnbalancedWord9::from_int(b)).to_int(), a + b);
    EXPECT_EQ((UnbalancedWord9::from_int(a) - UnbalancedWord9::from_int(b)).to_int(), a - b);
  }
}

TEST(Unbalanced, NegationNeedsInvertPlusIncrement) {
  std::mt19937_64 rng(6);
  std::uniform_int_distribution<int64_t> dist(-9841, 9841);
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = dist(rng);
    const UnbalancedWord9 w = UnbalancedWord9::from_int(v);
    EXPECT_EQ(w.negate().to_int(), -v);
    // Inversion alone is NOT negation (it yields -v-1): the increment —
    // and its full carry chain — is mandatory.
    EXPECT_EQ(w.invert().to_int(), -v - 1);
  }
}

TEST(Unbalanced, BalancedNegationIsCarryFree) {
  // The paper's §II-A contrast: balanced negation = one STI row, no carry.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Word9 w = random_word<9>(rng);
    EXPECT_EQ((-w), sti(w));  // tritwise; no adder involved
  }
}

TEST(Unbalanced, ConversionBetweenSystems) {
  std::mt19937_64 rng(8);
  std::uniform_int_distribution<int64_t> dist(-9841, 9841);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = dist(rng);
    const UnbalancedWord9 u = UnbalancedWord9::from_int(v);
    EXPECT_EQ(u.to_balanced().to_int(), v);
    EXPECT_EQ(UnbalancedWord9::from_balanced(Word9::from_int(v)), u);
  }
  // The extremes convert cleanly in both directions.
  EXPECT_EQ(UnbalancedWord9::from_int(-9841).to_balanced().to_int(), -9841);
  EXPECT_EQ(UnbalancedWord9::from_balanced(Word9::from_int(9841)).to_int(), 9841);
}

TEST(Unbalanced, DigitsStayInRange) {
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<int64_t> dist(UnbalancedWord9::kMinValue,
                                              UnbalancedWord9::kMaxValue);
  for (int i = 0; i < 500; ++i) {
    const UnbalancedWord9 w = UnbalancedWord9::from_int(dist(rng));
    for (std::size_t d = 0; d < UnbalancedWord9::kDigits; ++d) {
      EXPECT_GE(w.digit(d), 0);
      EXPECT_LE(w.digit(d), 2);
    }
  }
}

}  // namespace
}  // namespace art9::ternary
