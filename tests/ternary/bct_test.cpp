// Binary-coded ternary: the FPGA emulation encoding (2 bits per trit) must
// agree with the reference trit semantics gate-for-gate.
#include "ternary/bct.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ternary/random.hpp"

namespace art9::ternary {
namespace {

TEST(Bct, EncodingCostMatchesTableV) {
  // 9 trits x 2 bits = 18 bits per word; two 256-word memories = 9216 bits.
  EXPECT_EQ(BctWord9::kBitsPerWord, 18);
  EXPECT_EQ(2 * 256 * BctWord9::kBitsPerWord, 9216);
}

TEST(Bct, EncodeDecodeRoundTripExhaustive) {
  for (int64_t v = Word9::kMinValue; v <= Word9::kMaxValue; ++v) {
    const Word9 w = Word9::from_int(v);
    EXPECT_EQ(BctWord9::encode(w).decode(), w);
  }
}

TEST(Bct, PlaneInvariants) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const BctWord9 b = BctWord9::encode(random_word<9>(rng));
    EXPECT_EQ(b.neg_plane() & b.pos_plane(), 0u);  // the 11 code never appears
    EXPECT_LE(b.neg_plane(), BctWord9::kMask);
    EXPECT_LE(b.pos_plane(), BctWord9::kMask);
  }
}

TEST(Bct, FromPlanesValidation) {
  EXPECT_NO_THROW(BctWord9::from_planes(0b1u, 0b10u));
  EXPECT_THROW(BctWord9::from_planes(0b1u, 0b1u), std::invalid_argument);
  EXPECT_THROW(BctWord9::from_planes(1u << 9, 0u), std::invalid_argument);
}

TEST(Bct, ZeroWord) {
  EXPECT_EQ(BctWord9{}.decode(), Word9{});
  EXPECT_EQ(BctWord9::encode(Word9{}), BctWord9{});
}

// The bit-plane logic expressions must equal the tritwise reference ops on
// every input — checked on random words plus an exhaustive one-trit sweep.
TEST(Bct, LogicOpsMatchReference) {
  std::mt19937_64 rng(4);
  for (int i = 0; i < 3000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    const BctWord9 ea = BctWord9::encode(a);
    const BctWord9 eb = BctWord9::encode(b);
    EXPECT_EQ(BctWord9::tand(ea, eb).decode(), tand(a, b));
    EXPECT_EQ(BctWord9::tor(ea, eb).decode(), tor(a, b));
    EXPECT_EQ(BctWord9::txor(ea, eb).decode(), txor(a, b));
    EXPECT_EQ(ea.sti().decode(), sti(a));
    EXPECT_EQ(ea.nti().decode(), nti(a));
    EXPECT_EQ(ea.pti().decode(), pti(a));
  }
}

TEST(Bct, LogicOpsSingleTritExhaustive) {
  for (Trit x : kAllTrits) {
    for (Trit y : kAllTrits) {
      Word9 a;
      Word9 b;
      a.set(0, x);
      b.set(0, y);
      const BctWord9 ea = BctWord9::encode(a);
      const BctWord9 eb = BctWord9::encode(b);
      EXPECT_EQ(BctWord9::tand(ea, eb).decode()[0], tand(x, y));
      EXPECT_EQ(BctWord9::tor(ea, eb).decode()[0], tor(x, y));
      EXPECT_EQ(BctWord9::txor(ea, eb).decode()[0], txor(x, y));
    }
  }
}

TEST(Bct, AddMatchesReferenceAdder) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    const BctWord9 sum = BctWord9::add(BctWord9::encode(a), BctWord9::encode(b));
    EXPECT_EQ(sum.decode(), a + b);
  }
}

TEST(Bct, StiIsPlaneSwap) {
  std::mt19937_64 rng(6);
  for (int i = 0; i < 500; ++i) {
    const BctWord9 b = BctWord9::encode(random_word<9>(rng));
    const BctWord9 inverted = b.sti();
    EXPECT_EQ(inverted.neg_plane(), b.pos_plane());
    EXPECT_EQ(inverted.pos_plane(), b.neg_plane());
    EXPECT_EQ(inverted.sti(), b);  // involution
  }
}

}  // namespace
}  // namespace art9::ternary
