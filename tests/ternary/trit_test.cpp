// Trit algebra: the Fig. 1 truth tables and the laws the TALU relies on.
#include "ternary/trit.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace art9::ternary {
namespace {

TEST(Trit, ConstructionAndAccessors) {
  EXPECT_EQ(kTritN.value(), -1);
  EXPECT_EQ(kTritZ.value(), 0);
  EXPECT_EQ(kTritP.value(), 1);
  EXPECT_EQ(kTritN.level(), 0);
  EXPECT_EQ(kTritZ.level(), 1);
  EXPECT_EQ(kTritP.level(), 2);
  EXPECT_TRUE(kTritZ.is_zero());
  EXPECT_FALSE(kTritP.is_zero());
}

TEST(Trit, CheckedConstruction) {
  EXPECT_EQ(Trit::from_value(-1), kTritN);
  EXPECT_EQ(Trit::from_level(2), kTritP);
  EXPECT_THROW(Trit::from_value(2), std::out_of_range);
  EXPECT_THROW(Trit::from_value(-2), std::out_of_range);
  EXPECT_THROW(Trit::from_level(3), std::out_of_range);
  EXPECT_THROW(Trit::from_level(-1), std::out_of_range);
}

TEST(Trit, CharRoundTrip) {
  for (Trit t : kAllTrits) {
    EXPECT_EQ(Trit::from_char(t.to_char()), t);
  }
  EXPECT_EQ(Trit::from_char('N'), kTritN);
  EXPECT_EQ(Trit::from_char('p'), kTritP);
  EXPECT_THROW(Trit::from_char('x'), std::invalid_argument);
}

// --- Fig. 1 truth tables, row by row -----------------------------------

TEST(TritLogic, AndTruthTable) {
  // AND = min.
  EXPECT_EQ(tand(kTritN, kTritN), kTritN);
  EXPECT_EQ(tand(kTritN, kTritZ), kTritN);
  EXPECT_EQ(tand(kTritN, kTritP), kTritN);
  EXPECT_EQ(tand(kTritZ, kTritZ), kTritZ);
  EXPECT_EQ(tand(kTritZ, kTritP), kTritZ);
  EXPECT_EQ(tand(kTritP, kTritP), kTritP);
}

TEST(TritLogic, OrTruthTable) {
  // OR = max.
  EXPECT_EQ(tor(kTritN, kTritN), kTritN);
  EXPECT_EQ(tor(kTritN, kTritZ), kTritZ);
  EXPECT_EQ(tor(kTritN, kTritP), kTritP);
  EXPECT_EQ(tor(kTritZ, kTritZ), kTritZ);
  EXPECT_EQ(tor(kTritZ, kTritP), kTritP);
  EXPECT_EQ(tor(kTritP, kTritP), kTritP);
}

TEST(TritLogic, XorTruthTable) {
  // XOR = negated product.
  EXPECT_EQ(txor(kTritN, kTritN), kTritN);
  EXPECT_EQ(txor(kTritN, kTritZ), kTritZ);
  EXPECT_EQ(txor(kTritN, kTritP), kTritP);
  EXPECT_EQ(txor(kTritZ, kTritZ), kTritZ);
  EXPECT_EQ(txor(kTritZ, kTritP), kTritZ);
  EXPECT_EQ(txor(kTritP, kTritP), kTritN);
}

TEST(TritLogic, InverterTruthTables) {
  // STI: -1->+1, 0->0, +1->-1.
  EXPECT_EQ(sti(kTritN), kTritP);
  EXPECT_EQ(sti(kTritZ), kTritZ);
  EXPECT_EQ(sti(kTritP), kTritN);
  // NTI: -1->+1, 0->-1, +1->-1.
  EXPECT_EQ(nti(kTritN), kTritP);
  EXPECT_EQ(nti(kTritZ), kTritN);
  EXPECT_EQ(nti(kTritP), kTritN);
  // PTI: -1->+1, 0->+1, +1->-1.
  EXPECT_EQ(pti(kTritN), kTritP);
  EXPECT_EQ(pti(kTritZ), kTritP);
  EXPECT_EQ(pti(kTritP), kTritN);
}

// --- algebraic laws (exhaustive over all input combinations) -----------

TEST(TritLogic, CommutativityAndAssociativity) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      EXPECT_EQ(tand(a, b), tand(b, a));
      EXPECT_EQ(tor(a, b), tor(b, a));
      EXPECT_EQ(txor(a, b), txor(b, a));
      for (Trit c : kAllTrits) {
        EXPECT_EQ(tand(tand(a, b), c), tand(a, tand(b, c)));
        EXPECT_EQ(tor(tor(a, b), c), tor(a, tor(b, c)));
      }
    }
  }
}

TEST(TritLogic, DeMorganWithSti) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      EXPECT_EQ(sti(tand(a, b)), tor(sti(a), sti(b)));
      EXPECT_EQ(sti(tor(a, b)), tand(sti(a), sti(b)));
    }
  }
}

TEST(TritLogic, XorFormsCoincide) {
  // -(a*b) == max(min(a, -b), min(-a, b)) on every input pair — the
  // equivalence DESIGN.md relies on.
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      const Trit min_max = tor(tand(a, sti(b)), tand(sti(a), b));
      EXPECT_EQ(txor(a, b), min_max);
    }
  }
}

TEST(TritLogic, InverterInvolutionsAndIdentities) {
  for (Trit a : kAllTrits) {
    EXPECT_EQ(sti(sti(a)), a);                 // STI is an involution
    EXPECT_EQ(tand(a, kTritP), a);             // +1 is the AND identity
    EXPECT_EQ(tor(a, kTritN), a);              // -1 is the OR identity
    EXPECT_EQ(tand(a, kTritN), kTritN);        // -1 annihilates AND
    EXPECT_EQ(tor(a, kTritP), kTritP);         // +1 annihilates OR
  }
}

// --- arithmetic cells ----------------------------------------------------

TEST(TritArith, FullAdderExhaustive) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      for (Trit c : kAllTrits) {
        const TritSum s = tadd_full(a, b, c);
        EXPECT_EQ(s.sum.value() + 3 * s.carry.value(), a.value() + b.value() + c.value())
            << "a=" << a.value() << " b=" << b.value() << " c=" << c.value();
      }
    }
  }
}

TEST(TritArith, HalfAdderMatchesFullAdder) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      EXPECT_EQ(tadd_half(a, b), tadd_full(a, b, kTritZ));
    }
  }
}

TEST(TritArith, CompareCell) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      const int expected = (a.value() > b.value()) - (a.value() < b.value());
      EXPECT_EQ(tcmp(a, b).value(), expected);
    }
  }
}

TEST(TritArith, MulCell) {
  for (Trit a : kAllTrits) {
    for (Trit b : kAllTrits) {
      EXPECT_EQ(tmul(a, b).value(), a.value() * b.value());
      EXPECT_EQ(txor(a, b), sti(tmul(a, b)));
    }
  }
}

}  // namespace
}  // namespace art9::ternary
