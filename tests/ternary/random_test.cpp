// Golden-value pins for the portable bounded-draw helpers.  std::mt19937_64's
// raw output is specified by the standard and random_below/random_in are
// implemented in this repository, so these exact sequences must reproduce on
// every platform and standard library.  If one of these expectations ever
// fails, the helper changed behaviour — which silently invalidates every
// recorded fuzz seed and seeded differential test.  Do not re-pin casually.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <random>

#include "ternary/random.hpp"

namespace art9::ternary {
namespace {

TEST(Random, GoldenBelow) {
  std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
  const std::array<uint64_t, 8> expected = {98, 71, 58, 47, 0, 89, 90, 38};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(random_below(rng, 100), expected[i]) << "draw " << i;
  }
}

TEST(Random, GoldenIn) {
  std::mt19937_64 rng(42);
  const std::array<int64_t, 8> expected = {7, 4, 7, -10, 11, -11, 2, -3};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(random_in(rng, -13, 13), expected[i]) << "draw " << i;
  }
}

TEST(Random, GoldenTritsAndWords) {
  std::mt19937_64 trng(7);
  const std::array<int, 5> trits = {1, 1, -1, 1, -1};
  for (std::size_t i = 0; i < trits.size(); ++i) {
    EXPECT_EQ(random_trit(trng).value(), trits[i]) << "draw " << i;
  }
  std::mt19937_64 wrng(123);
  EXPECT_EQ(random_word<9>(wrng).to_string(), "+-+--++0-");
  EXPECT_EQ(random_word_in<9>(wrng, -9841, 9841).to_int(), -232);
}

TEST(Random, FullRangeDraw) {
  // [INT64_MIN, INT64_MAX] short-circuits to the raw engine output.
  std::mt19937_64 rng(1);
  const int64_t v = random_in(rng, std::numeric_limits<int64_t>::min(),
                              std::numeric_limits<int64_t>::max());
  EXPECT_EQ(v, 2469588189546311528LL);
}

TEST(Random, BoundsAreInclusive) {
  std::mt19937_64 rng(99);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = random_in(rng, -2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(random_in(rng, 5, 5), 5);
}

}  // namespace
}  // namespace art9::ternary
