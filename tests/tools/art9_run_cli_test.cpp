// art9-run CLI contract: usage errors exit 2, --help documents the full
// exit-code table on stdout and exits 0.  The binary path arrives via
// the ART9_RUN_BIN compile definition (a $<TARGET_FILE:art9-run>
// generator expression), so the test follows the build tree wherever
// ctest runs.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

struct RunOutput {
  int exit_code = -1;
  std::string stdout_text;
};

/// Runs `command` (stderr folded into stdout), capturing output + status.
RunOutput run(const std::string& command) {
  RunOutput out;
  std::FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return out;
  std::array<char, 512> buf{};
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) out.stdout_text += buf.data();
  const int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

TEST(Art9RunCli, NoArgumentsIsAUsageError) {
  EXPECT_EQ(run(ART9_RUN_BIN).exit_code, 2);
}

TEST(Art9RunCli, UnknownFlagIsAUsageError) {
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) + " --no-such-flag").exit_code, 2);
}

TEST(Art9RunCli, UnknownEngineIsAUsageError) {
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) + " --engine=warp prog.t9").exit_code, 2);
}

TEST(Art9RunCli, HelpExitsZeroAndDocumentsTheExitCodeTable) {
  const RunOutput help = run(std::string(ART9_RUN_BIN) + " --help");
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.stdout_text.find("usage: art9-run"), std::string::npos);
  // The full outcome -> exit-code table must be documented.
  for (const char* row : {"0  completed", "3  trapped", "4  budget_exhausted",
                          "5  deadline_exceeded", "6  cancelled", "7  faulted",
                          "1  load/internal error", "2  usage error"}) {
    EXPECT_NE(help.stdout_text.find(row), std::string::npos) << "missing: " << row;
  }
}

TEST(Art9RunCli, MissingInputFileIsALoadError) {
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) + " /nonexistent/prog.t9").exit_code, 1);
}

TEST(Art9RunCli, SuperblockEngineNamesParse) {
  // Both superblock kinds must be accepted by --engine= (exit 1 = the
  // parse succeeded and only the input file load failed; an unknown
  // engine would exit 2 before touching the file).
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) + " --engine=superblock /nonexistent/prog.t9").exit_code,
            1);
  EXPECT_EQ(
      run(std::string(ART9_RUN_BIN) + " --engine=rv32_superblock /nonexistent/prog.s").exit_code,
      1);
}

TEST(Art9RunCli, HelpDocumentsTheSuperblockEngines) {
  const RunOutput help = run(std::string(ART9_RUN_BIN) + " --help");
  EXPECT_NE(help.stdout_text.find("superblock"), std::string::npos);
  EXPECT_NE(help.stdout_text.find("rv32_superblock"), std::string::npos);
}

TEST(Art9RunCli, FleetEngineNameParses) {
  // Exit 1 = the engine name parsed and only the input load failed.
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) + " --engine=fleet /nonexistent/prog.t9").exit_code, 1);
}

TEST(Art9RunCli, LanesRequiresTheFleetEngine) {
  // --lanes maps onto submit_cohort, which only packs fleet jobs: any
  // other engine is a usage error, caught before the input is touched.
  EXPECT_EQ(
      run(std::string(ART9_RUN_BIN) + " --engine=packed --lanes 4 /nonexistent/prog.t9").exit_code,
      2);
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) + " --lanes 4 /nonexistent/prog.t9").exit_code, 2);
}

TEST(Art9RunCli, LanesRejectsTheRecoveryControls) {
  // Cohort lanes share one packed word, so the per-job recovery
  // machinery (checkpoints, retries, fault drills) cannot apply.
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) +
                " --engine=fleet --lanes 4 --retries 2 /nonexistent/prog.t9")
                .exit_code,
            2);
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) +
                " --engine=fleet --lanes 4 --checkpoint-every 100 /nonexistent/prog.t9")
                .exit_code,
            2);
  EXPECT_EQ(run(std::string(ART9_RUN_BIN) +
                " --engine=fleet --lanes 4 --fault-at 10 /nonexistent/prog.t9")
                .exit_code,
            2);
}

TEST(Art9RunCli, LanesMustBePositive) {
  EXPECT_EQ(
      run(std::string(ART9_RUN_BIN) + " --engine=fleet --lanes -3 /nonexistent/prog.t9").exit_code,
      2);
}

TEST(Art9RunCli, HelpDocumentsTheFleetCohortMode) {
  const RunOutput help = run(std::string(ART9_RUN_BIN) + " --help");
  EXPECT_NE(help.stdout_text.find("fleet"), std::string::npos);
  EXPECT_NE(help.stdout_text.find("--lanes"), std::string::npos);
}

}  // namespace
