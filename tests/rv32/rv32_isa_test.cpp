// RV32 ISA model: encode/decode round-trips against the standard formats.
#include "rv32/rv32_isa.hpp"

#include <gtest/gtest.h>

#include <random>

namespace art9::rv32 {
namespace {

TEST(Rv32Isa, InstructionCountsMatchTableII) {
  EXPECT_EQ(kNumRv32IOps, 40);  // VexRiscv row
  EXPECT_EQ(kNumRv32Ops, 48);   // PicoRV32 row (RV32IM)
}

TEST(Rv32Isa, KnownEncodings) {
  // Cross-checked against the RISC-V spec examples.
  EXPECT_EQ(encode({Rv32Op::kAddi, 1, 0, 0, 0}), 0x00000093u);   // addi ra, zero, 0
  EXPECT_EQ(encode({Rv32Op::kAdd, 3, 1, 2, 0}), 0x002081B3u);    // add gp, ra, sp
  EXPECT_EQ(encode({Rv32Op::kLui, 5, 0, 0, 1}), 0x000012B7u);    // lui t0, 1
  EXPECT_EQ(encode({Rv32Op::kEbreak, 0, 0, 0, 0}), 0x00100073u);
  EXPECT_EQ(encode({Rv32Op::kEcall, 0, 0, 0, 0}), 0x00000073u);
  EXPECT_EQ(encode({Rv32Op::kLw, 6, 7, 0, 8}), 0x0083A303u);     // lw t1, 8(t2)
  EXPECT_EQ(encode({Rv32Op::kSw, 0, 2, 8, 12}), 0x00812623u);    // sw s0, 12(sp)
  EXPECT_EQ(encode({Rv32Op::kMul, 10, 11, 12, 0}), 0x02C58533u); // mul a0, a1, a2
}

class Rv32RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Rv32RoundTrip, EncodeDecodeIsIdentity) {
  const auto op = static_cast<Rv32Op>(GetParam());
  const Rv32Spec& s = spec(op);
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 1);
  std::uniform_int_distribution<int> reg(0, 31);
  for (int i = 0; i < 300; ++i) {
    Rv32Instruction inst;
    inst.op = op;
    switch (s.format) {
      case Rv32Format::kR:
        inst.rd = reg(rng);
        inst.rs1 = reg(rng);
        inst.rs2 = reg(rng);
        break;
      case Rv32Format::kI:
        inst.rd = reg(rng);
        inst.rs1 = reg(rng);
        inst.imm = std::uniform_int_distribution<int>(-2048, 2047)(rng);
        break;
      case Rv32Format::kIShift:
        inst.rd = reg(rng);
        inst.rs1 = reg(rng);
        inst.imm = std::uniform_int_distribution<int>(0, 31)(rng);
        break;
      case Rv32Format::kS:
        inst.rs1 = reg(rng);
        inst.rs2 = reg(rng);
        inst.imm = std::uniform_int_distribution<int>(-2048, 2047)(rng);
        break;
      case Rv32Format::kB:
        inst.rs1 = reg(rng);
        inst.rs2 = reg(rng);
        inst.imm = std::uniform_int_distribution<int>(-2048, 2047)(rng) * 2;
        break;
      case Rv32Format::kU:
        inst.rd = reg(rng);
        inst.imm = std::uniform_int_distribution<int>(-524288, 524287)(rng);
        break;
      case Rv32Format::kJ:
        inst.rd = reg(rng);
        inst.imm = std::uniform_int_distribution<int>(-524288, 524287)(rng) * 2;
        break;
      case Rv32Format::kSystem:
        break;
    }
    EXPECT_EQ(decode(encode(inst)), inst) << to_string(inst);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, Rv32RoundTrip, ::testing::Range(0, kNumRv32Ops),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return std::string(mnemonic(static_cast<Rv32Op>(param_info.param)));
                         });

TEST(Rv32Isa, EncodingRangeChecks) {
  EXPECT_THROW((void)encode({Rv32Op::kAddi, 0, 0, 0, 2048}), std::out_of_range);
  EXPECT_THROW((void)encode({Rv32Op::kSlli, 0, 0, 0, 32}), std::out_of_range);
  EXPECT_THROW((void)encode({Rv32Op::kBeq, 0, 0, 0, 3}), std::out_of_range);  // odd offset
  EXPECT_THROW((void)encode({Rv32Op::kAdd, 32, 0, 0, 0}), std::out_of_range);
}

TEST(Rv32Isa, DecodeRejectsUndefined) {
  EXPECT_THROW((void)decode(0xFFFFFFFFu), std::invalid_argument);
  EXPECT_THROW((void)decode(0x00000000u), std::invalid_argument);
}

TEST(Rv32Isa, RegisterNames) {
  EXPECT_EQ(abi_name(0), "zero");
  EXPECT_EQ(abi_name(2), "sp");
  EXPECT_EQ(abi_name(10), "a0");
  EXPECT_EQ(parse_rv32_register("x31"), 31);
  EXPECT_EQ(parse_rv32_register("t6"), 31);
  EXPECT_EQ(parse_rv32_register("fp"), 8);
  EXPECT_EQ(parse_rv32_register("s0"), 8);
  EXPECT_THROW((void)parse_rv32_register("q1"), std::invalid_argument);
  EXPECT_THROW((void)parse_rv32_register("x32"), std::out_of_range);
}

TEST(Rv32Isa, MnemonicLookup) {
  EXPECT_EQ(rv32_op_from_mnemonic("ADD"), Rv32Op::kAdd);
  EXPECT_EQ(rv32_op_from_mnemonic("bltu"), Rv32Op::kBltu);
  EXPECT_THROW((void)rv32_op_from_mnemonic("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace art9::rv32
