// PicoRV32 / VexRiscv cycle-model accounting on crafted retirement streams.
#include "rv32/cycle_models.hpp"

#include <gtest/gtest.h>

namespace art9::rv32 {
namespace {

Rv32Retired retire(Rv32Op op, int rd = 1, int rs1 = 2, int rs2 = 3, bool taken = false) {
  Rv32Retired r;
  r.inst = Rv32Instruction{op, rd, rs1, rs2, 0};
  r.taken = taken;
  return r;
}

TEST(PicoModel, PerClassCosts) {
  const PicoRv32Costs costs;  // defaults
  PicoRv32CycleModel model(costs);
  model.observe(retire(Rv32Op::kAdd));
  EXPECT_EQ(model.cycles(), costs.alu);
  model.observe(retire(Rv32Op::kLw));
  EXPECT_EQ(model.cycles(), costs.alu + costs.load);
  model.observe(retire(Rv32Op::kSw));
  model.observe(retire(Rv32Op::kBeq, 0, 1, 2, true));
  model.observe(retire(Rv32Op::kBeq, 0, 1, 2, false));
  model.observe(retire(Rv32Op::kJal));
  model.observe(retire(Rv32Op::kJalr));
  model.observe(retire(Rv32Op::kMul));
  EXPECT_EQ(model.cycles(), costs.alu + costs.load + costs.store + costs.branch_taken +
                                costs.branch_not_taken + costs.jal + costs.jalr + costs.mul);
  EXPECT_EQ(model.instructions(), 8u);
  EXPECT_GT(model.cpi(), 1.0);
}

TEST(PicoModel, AverageCpiIsMultiCycle) {
  // The PicoRV32 is non-pipelined: every class costs >= 3 cycles.
  PicoRv32CycleModel model;
  for (int i = 0; i < 100; ++i) model.observe(retire(Rv32Op::kAdd));
  EXPECT_GE(model.cpi(), 3.0);
}

TEST(VexModel, BaseThroughputIsOneCyclePerInstruction) {
  VexRiscvCycleModel model;
  for (int i = 0; i < 50; ++i) model.observe(retire(Rv32Op::kAdd, 1, 2, 3));
  EXPECT_EQ(model.cycles(), 50u);
  EXPECT_DOUBLE_EQ(model.cpi(), 1.0);
}

TEST(VexModel, LoadUseInterlock) {
  const VexRiscvCosts costs;
  VexRiscvCycleModel model(costs);
  model.observe(retire(Rv32Op::kLw, /*rd=*/5, 2, 0));
  model.observe(retire(Rv32Op::kAdd, 1, /*rs1=*/5, 3));  // uses the loaded value
  EXPECT_EQ(model.cycles(), 2u + costs.load_use_stall);
  EXPECT_EQ(model.load_use_stalls(), 1u);

  // An independent instruction in between hides the latency.
  VexRiscvCycleModel model2(costs);
  model2.observe(retire(Rv32Op::kLw, 5, 2, 0));
  model2.observe(retire(Rv32Op::kAdd, 1, 2, 3));
  model2.observe(retire(Rv32Op::kAdd, 1, 5, 3));
  EXPECT_EQ(model2.load_use_stalls(), 0u);
  EXPECT_EQ(model2.cycles(), 3u);
}

TEST(VexModel, LoadToX0NeverStalls) {
  VexRiscvCycleModel model;
  model.observe(retire(Rv32Op::kLw, /*rd=*/0, 2, 0));
  model.observe(retire(Rv32Op::kAdd, 1, 0, 0));
  EXPECT_EQ(model.load_use_stalls(), 0u);
}

TEST(VexModel, TakenBranchPenalty) {
  const VexRiscvCosts costs;
  VexRiscvCycleModel model(costs);
  model.observe(retire(Rv32Op::kBeq, 0, 1, 2, true));
  model.observe(retire(Rv32Op::kBeq, 0, 1, 2, false));
  model.observe(retire(Rv32Op::kJal, 1, 0, 0, true));
  EXPECT_EQ(model.branch_penalties(), 2u);
  EXPECT_EQ(model.cycles(), 3u + 2 * costs.taken_branch_penalty);
}

TEST(VexModel, DividerLatency) {
  const VexRiscvCosts costs;
  VexRiscvCycleModel model(costs);
  model.observe(retire(Rv32Op::kDiv));
  EXPECT_EQ(model.cycles(), 1u + costs.div_extra);
}

TEST(DhrystoneMath, ConversionHelpers) {
  // Paper Table II: 0.42 DMIPS/MHz at ~1355 cycles/iteration.
  EXPECT_NEAR(dmips_per_mhz(1355), 0.42, 0.002);
  // Table V: 0.42 DMIPS/MHz * 150 MHz / 1.09 W = 57.8 DMIPS/W.
  EXPECT_NEAR(dmips_per_watt(0.42, 150.0, 1.09), 57.8, 0.1);
  // Table IV: 3.06e6 DMIPS/W at 42.7 uW needs ~311 MHz.
  EXPECT_NEAR(dmips_per_watt(0.42, 311.0, 42.7e-6), 3.06e6, 0.02e6);
  EXPECT_EQ(dmips_per_mhz(0), 0.0);
  EXPECT_EQ(dmips_per_watt(0.42, 100.0, 0.0), 0.0);
}

}  // namespace
}  // namespace art9::rv32
