// Rv32DecodedImage: eager pre-decode contract — precomputed PC chains,
// load-time rejection of malformed encodings, trap-row resolution — and
// the pre-decoded Rv32Simulator's differential parity with the seed
// LazyRv32Simulator loop.
#include "rv32/rv32_decoded_image.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"

namespace art9::rv32 {
namespace {

TEST(Rv32DecodedImage, PrecomputesPcChainsAndOperands) {
  const std::shared_ptr<const Rv32DecodedImage> image = decode(assemble_rv32(R"(
    lui  a0, 18
    auipc a1, 2
    jal  ra, target
    addi a2, zero, 5
  target:
    ebreak
  )"));
  ASSERT_EQ(image->rows(), 5u);
  const Rv32DecodedOp& lui = image->row(0);
  EXPECT_EQ(lui.kind, Rv32Dispatch::kLui);
  EXPECT_EQ(lui.imm_u, 18u << 12);  // complete result folded at decode
  EXPECT_EQ(lui.next_pc, 4u);
  EXPECT_EQ(lui.next_row, 1u);

  const Rv32DecodedOp& auipc = image->row(1);
  EXPECT_EQ(auipc.imm_u, 4u + (2u << 12));  // pc + (imm << 12)

  const Rv32DecodedOp& jal = image->row(2);
  EXPECT_EQ(jal.kind, Rv32Dispatch::kJal);
  EXPECT_EQ(jal.taken_pc, 16u);
  EXPECT_EQ(jal.taken_row, 4u);
  EXPECT_EQ(jal.link, 12u);  // pc + 4

  // The row past the last instruction is the shared trap row.
  EXPECT_EQ(image->row(4).next_row, image->trap_row());
  EXPECT_EQ(image->row(image->trap_row()).kind, Rv32Dispatch::kTrap);

  // row_of: dense for in-program 4-aligned PCs, trap otherwise.
  EXPECT_EQ(image->row_of(8), 2u);
  EXPECT_EQ(image->row_of(6), image->trap_row());    // misaligned
  EXPECT_EQ(image->row_of(999), image->trap_row());  // outside
}

TEST(Rv32DecodedImage, MalformedEncodingRejectedAtLoad) {
  // A register index outside [0, 31] cannot encode: the image must
  // reject it at decode time, not on first execution.
  Rv32Program program;
  program.code.push_back(Rv32Instruction{Rv32Op::kAddi, 40, 0, 0, 1});
  program.entry = 0;
  EXPECT_THROW(static_cast<void>(Rv32DecodedImage(program)), Rv32SimError);

  // So must an immediate outside its format's range.
  Rv32Program bad_imm;
  bad_imm.code.push_back(Rv32Instruction{Rv32Op::kAddi, 1, 0, 0, 5000});
  bad_imm.entry = 0;
  EXPECT_THROW(static_cast<void>(Rv32DecodedImage(bad_imm)), Rv32SimError);
}

TEST(Rv32DecodedImage, SharedAcrossSimulatorInstances) {
  const std::shared_ptr<const Rv32DecodedImage> image = decode(assemble_rv32(R"(
    li   a0, 21
    add  a0, a0, a0
    ebreak
  )"));
  Rv32Simulator a(image);
  Rv32Simulator b(image);
  EXPECT_TRUE(a.run().halted);
  EXPECT_TRUE(b.run().halted);
  EXPECT_EQ(a.reg(10), 42u);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(&a.image(), image.get());
}

TEST(Rv32DecodedImage, PreDecodedMatchesLazyBaseline) {
  // Differential lock: the pre-decoded loop is bit-identical to the seed
  // decode-on-fetch loop on a control-flow-heavy program.
  const std::string source = R"(
    li   a0, 0
    li   a1, 1
  loop:
    add  a0, a0, a1
    addi a1, a1, 1
    li   t0, 29
    blt  a1, t0, loop
    call square
    ebreak
  square:
    mul  a0, a0, a0
    ret
  )";
  const Rv32Program program = assemble_rv32(source);
  Rv32Simulator predecoded(program);
  LazyRv32Simulator lazy(program);
  const Rv32RunStats fast = predecoded.run();
  const Rv32RunStats seed = lazy.run();
  EXPECT_EQ(fast, seed);
  EXPECT_TRUE(fast.halted);
  EXPECT_EQ(predecoded.state(), lazy.state());
}

TEST(Rv32DecodedImage, JalrToInvalidTargetTrapsLikeLazy) {
  // A data-dependent jump outside the program faults on the *next* fetch
  // with the faulting pc, exactly like the seed loop.
  const std::string source = "li t0, 996\njalr ra, t0, 0\nebreak\n";
  Rv32Simulator predecoded(assemble_rv32(source));
  LazyRv32Simulator lazy(assemble_rv32(source));
  EXPECT_TRUE(predecoded.step());  // li
  EXPECT_TRUE(predecoded.step());  // jalr retires; pc now invalid
  EXPECT_TRUE(lazy.step());
  EXPECT_TRUE(lazy.step());
  EXPECT_EQ(predecoded.pc(), lazy.pc());
  EXPECT_THROW(static_cast<void>(predecoded.step()), Rv32SimError);
  EXPECT_THROW(static_cast<void>(lazy.step()), Rv32SimError);
}

}  // namespace
}  // namespace art9::rv32
