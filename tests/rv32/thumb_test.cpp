// Thumb-1 subset assembler: encodings and size accounting (Fig. 5 baseline).
#include "rv32/thumb.hpp"

#include <gtest/gtest.h>

namespace art9::rv32 {
namespace {

TEST(Thumb, KnownEncodings) {
  const ThumbProgram p = assemble_thumb(R"(
    movs r0, #5
    adds r1, r0, r2
    adds r1, r0, #3
    adds r3, #200
    subs r4, r1, r0
    cmp  r0, #7
    cmp  r0, r1
    lsls r2, r3, #4
    muls r5, r6
    nop
)");
  ASSERT_EQ(p.halfwords.size(), 10u);
  EXPECT_EQ(p.halfwords[0], 0x2005u);  // MOVS r0, #5
  EXPECT_EQ(p.halfwords[1], 0x1881u);  // ADDS r1, r0, r2
  EXPECT_EQ(p.halfwords[2], 0x1CC1u);  // ADDS r1, r0, #3
  EXPECT_EQ(p.halfwords[3], 0x33C8u);  // ADDS r3, #200
  EXPECT_EQ(p.halfwords[4], 0x1A0Cu);  // SUBS r4, r1, r0
  EXPECT_EQ(p.halfwords[5], 0x2807u);  // CMP r0, #7
  EXPECT_EQ(p.halfwords[6], 0x4288u);  // CMP r0, r1
  EXPECT_EQ(p.halfwords[7], 0x011Au);  // LSLS r2, r3, #4
  EXPECT_EQ(p.halfwords[8], 0x4375u);  // MULS r5, r6
  EXPECT_EQ(p.halfwords[9], 0xBF00u);  // NOP
}

TEST(Thumb, MemoryEncodings) {
  const ThumbProgram p = assemble_thumb(R"(
    ldr  r0, [r1, #4]
    str  r2, [r3, #0]
    ldrb r4, [r5, #1]
    ldr  r6, [r7, r0]
    str  r1, [sp, #8]
)");
  ASSERT_EQ(p.halfwords.size(), 5u);
  EXPECT_EQ(p.halfwords[0], 0x6848u);  // LDR r0, [r1, #4]
  EXPECT_EQ(p.halfwords[1], 0x601Au);  // STR r2, [r3, #0]
  EXPECT_EQ(p.halfwords[2], 0x786Cu);  // LDRB r4, [r5, #1]
  EXPECT_EQ(p.halfwords[3], 0x583Eu);  // LDR r6, [r7, r0]
  EXPECT_EQ(p.halfwords[4], 0x9102u);  // STR r1, [sp, #8]
}

TEST(Thumb, BranchOffsets) {
  const ThumbProgram p = assemble_thumb(R"(
top:
    nop
    beq top
    b   top
    bl  top
    bx  lr
)");
  // beq at byte 2: offset = 0 - (2+4) = -6 -> imm8 = -3.
  EXPECT_EQ(p.halfwords[1], 0xD0FDu);
  // b at byte 4: offset = -8 -> imm11 = -4.
  EXPECT_EQ(p.halfwords[2], 0xE7FCu);
  // bl occupies two halfwords.
  EXPECT_EQ(p.halfwords.size(), 6u);
  EXPECT_EQ(p.halfwords[5], 0x4770u);  // BX LR
}

TEST(Thumb, PushPop) {
  const ThumbProgram p = assemble_thumb("push {r4, r5, lr}\npop {r4, r5, pc}\n");
  EXPECT_EQ(p.halfwords[0], 0xB530u);
  EXPECT_EQ(p.halfwords[1], 0xBD30u);
}

TEST(Thumb, SizeAccounting) {
  const ThumbProgram p = assemble_thumb(R"(
    movs r0, #1
    bl   f
f:  bx   lr
.data
.word 1, 2, 3
)");
  // 4 halfwords (bl = 2) + 3 data words.
  EXPECT_EQ(p.code_bits(), 4 * 16);
  EXPECT_EQ(p.memory_cells(), 4 * 16 + 3 * 32);
}

TEST(Thumb, EquSymbols) {
  const ThumbProgram p = assemble_thumb(".equ N, 13\nmovs r1, #N\ncmp r1, #N\n");
  EXPECT_EQ(p.halfwords[0], 0x210Du);
  EXPECT_EQ(p.halfwords[1], 0x290Du);
}

TEST(ThumbErrors, Diagnostics) {
  EXPECT_THROW(assemble_thumb("movs r9, #1\n"), ThumbAsmError);       // high register
  EXPECT_THROW(assemble_thumb("movs r0, #300\n"), ThumbAsmError);     // imm8 range
  EXPECT_THROW(assemble_thumb("adds r0, r1, #9\n"), ThumbAsmError);   // imm3 range
  EXPECT_THROW(assemble_thumb("ldr r0, [r1, #3]\n"), ThumbAsmError);  // unaligned
  EXPECT_THROW(assemble_thumb("beq nowhere\n"), ThumbAsmError);       // unknown label
  EXPECT_THROW(assemble_thumb("frob r0\n"), ThumbAsmError);           // unknown op
}

TEST(Thumb, BenchmarkPortsAssemble) {
  // The four Fig. 5 ports must assemble and have plausible sizes.
  // (Checked in depth in tests/core/benchmarks_test.cpp.)
  const ThumbProgram p = assemble_thumb("movs r0, #0\nnop\n");
  EXPECT_EQ(p.halfwords.size(), 2u);
}

}  // namespace
}  // namespace art9::rv32
