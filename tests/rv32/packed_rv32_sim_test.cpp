// PackedRv32Simulator: the PackedWord<21> plane-pair datapath must be
// bit-identical to the reference Rv32Simulator in registers, every RAM
// byte, PC, stats and observer stream — on the whole benchmark corpus
// and an every-opcode RV32I(+M) sweep — and its packed representation
// must round-trip the full uint32_t range.
#include "rv32/packed_rv32_sim.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "rv32/rv32_assembler.hpp"

namespace art9::rv32 {
namespace {

/// Bit-identical end-to-end comparison of the two datapaths.
void expect_packed_matches_reference(const Rv32Program& program,
                                     uint64_t budget = 100'000'000) {
  const std::shared_ptr<const Rv32DecodedImage> image = decode(program);
  Rv32Simulator reference(image);
  PackedRv32Simulator packed(image);

  std::vector<Rv32Retired> reference_stream;
  std::vector<Rv32Retired> packed_stream;
  const Rv32RunStats ref_stats =
      reference.run(budget, [&](const Rv32Retired& r) { reference_stream.push_back(r); });
  const Rv32RunStats packed_stats =
      packed.run(budget, [&](const Rv32Retired& r) { packed_stream.push_back(r); });

  EXPECT_EQ(packed_stats, ref_stats);
  EXPECT_EQ(packed.state(), reference.state());  // regs, every RAM byte, pc
  ASSERT_EQ(packed_stream.size(), reference_stream.size());
  for (std::size_t i = 0; i < packed_stream.size(); ++i) {
    EXPECT_EQ(packed_stream[i].pc, reference_stream[i].pc) << "index " << i;
    EXPECT_EQ(packed_stream[i].taken, reference_stream[i].taken) << "index " << i;
    EXPECT_EQ(packed_stream[i].inst, reference_stream[i].inst) << "index " << i;
  }
}

// --- representation ----------------------------------------------------------

TEST(PackedU32, RoundTripsEdgeValues) {
  // The unsigned 32-bit range embeds into the 21-trit balanced range
  // unbiased (2^32 - 1 < (3^21 - 1) / 2).
  static_assert(static_cast<int64_t>(0xFFFFFFFFu) < PackedU32::kMaxValue);
  for (uint32_t v : {0u, 1u, 2u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu, 0xDEADBEEFu, 19683u,
                     0x55555555u, 0xAAAAAAAAu}) {
    EXPECT_EQ(unpack_u32(pack_u32(v)), v) << v;
  }
}

TEST(PackedU32, RandomRoundTrip) {
  uint32_t x = 0x12345678u;
  for (int i = 0; i < 20000; ++i) {
    x = x * 1664525u + 1013904223u;  // LCG sweep
    EXPECT_EQ(unpack_u32(pack_u32(x)), x);
  }
}

TEST(PackedRv32Sim, RegistersLiveAsPlanePairs) {
  PackedRv32Simulator sim(assemble_rv32("li a0, 1\nebreak\n"));
  sim.set_reg(10, 0xCAFEF00Du);
  // The stored representation is the 21-trit plane pair of the value,
  // not a host word.
  EXPECT_EQ(sim.packed_reg(10), pack_u32(0xCAFEF00Du));
  EXPECT_EQ(sim.reg(10), 0xCAFEF00Du);
  // x0 stays hard-wired zero through the packed write path too.
  sim.set_reg(0, 123u);
  EXPECT_EQ(sim.reg(0), 0u);
}

// --- the acceptance corpus ---------------------------------------------------

TEST(PackedRv32Sim, BitIdenticalOnBenchmarkCorpus) {
  for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
    SCOPED_TRACE(bench->name);
    expect_packed_matches_reference(assemble_rv32(bench->rv32));
  }
}

TEST(PackedRv32Sim, BenchmarkOutputsMatchHostReference) {
  // End-to-end spot check against the host-side golden outputs: the
  // packed datapath computes the same sorted array and checksum.
  PackedRv32Simulator bubble(assemble_rv32(core::bubble_sort().rv32));
  ASSERT_TRUE(bubble.run().halted);
  const std::vector<int32_t> expected = core::bubble_expected();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<int32_t>(
                  bubble.load_word(core::kBubbleArrayAddr + 4 * static_cast<uint32_t>(i))),
              expected[i]);
  }

  PackedRv32Simulator dhry(assemble_rv32(core::dhrystone().rv32));
  ASSERT_TRUE(dhry.run().halted);
  EXPECT_EQ(static_cast<int32_t>(dhry.load_word(core::kDhrystoneChecksumAddr)),
            core::dhrystone_expected_checksum());
}

// --- every-opcode sweep ------------------------------------------------------

TEST(PackedRv32Sim, BitIdenticalOnOpcodeSweep) {
  // Compact per-class programs that collectively execute all 48 ops with
  // operand patterns that stress the representation (sign boundaries,
  // carries across plane chunks, sub-word memory overlap).
  const std::vector<std::string> kPrograms = {
      R"(
        li    a0, -1
        li    a1, 1
        add   a2, a0, a1
        sub   a3, a1, a0
        and   a4, a0, a1
        or    a5, a0, a1
        xor   a6, a0, a1
        sll   t0, a0, a1
        srl   t1, a0, a1
        sra   t2, a0, a1
        slt   t3, a0, a1
        sltu  t4, a0, a1
        lui   s0, 524287
        lui   s1, -524288
        auipc s2, 0
        addi  s3, a0, -2048
        slti  s4, a0, -1
        sltiu s5, a0, 2047
        xori  s6, a0, -1
        ori   s7, a0, 1365
        andi  s8, a0, -1366
        slli  s9, a1, 31
        srli  s10, a0, 31
        srai  s11, a0, 31
        ebreak
      )",
      R"(
        li     a0, 65536
        li     a1, 65537
        mul    a2, a0, a1
        mulh   a3, a0, a1
        mulhsu a4, a0, a1
        mulhu  a5, a0, a1
        li     t0, -2147483648
        li     t1, -1
        mulh   t2, t0, t1
        mulhsu t3, t0, t1
        mulhu  t4, t0, t1
        div    s0, t0, t1
        rem    s1, t0, t1
        li     t5, 0
        div    s2, a0, t5
        divu   s3, a0, t5
        rem    s4, a0, t5
        remu   s5, a0, t5
        div    s6, a1, a0
        divu   s7, a1, a0
        rem    s8, a1, a0
        remu   s9, a1, a0
        fence
        ecall
      )",
      R"(
        li   a0, -1
        li   a1, 1
        beq  a0, a1, never
        bne  a0, a1, L1
        addi s0, zero, 1
      L1:
        blt  a0, a1, L2
        addi s0, zero, 2
      L2:
        bge  a1, a0, L3
        addi s0, zero, 3
      L3:
        bltu a1, a0, L4
        addi s0, zero, 4
      L4:
        bgeu a0, a1, L5
        addi s0, zero, 5
      L5:
        bge  a0, a1, never
        bltu a0, a1, never
        jal  ra, leaf
        ebreak
      never:
        addi s1, zero, 9
        ebreak
      leaf:
        jalr zero, ra, 0
      )",
      R"(
      .data
      .org 128
      words: .word -1, 0x7FFFFFFF, 0x80000000
      .text
        li   a0, 128
        lw   a1, 0(a0)
        lw   a2, 4(a0)
        lw   a3, 8(a0)
        lb   t0, 0(a0)
        lbu  t1, 0(a0)
        lh   t2, 2(a0)
        lhu  t3, 2(a0)
        lb   t4, 11(a0)
        sb   a1, 64(a0)
        sb   a2, 65(a0)
        sh   a1, 66(a0)
        sh   a3, 68(a0)
        sw   a1, 72(a0)
        lw   s0, 64(a0)
        lw   s1, 68(a0)
        lw   s2, 72(a0)
        sh   a1, 79(a0)    ; crosses a row boundary
        lh   s3, 79(a0)
        sw   a2, 81(a0)    ; unaligned word spanning two rows
        lw   s4, 81(a0)
        lw   s5, 76(a0)
        lw   s6, 80(a0)
        ebreak
      )",
  };
  for (const std::string& source : kPrograms) {
    expect_packed_matches_reference(assemble_rv32(source), 2'000);
  }
}

// --- trap parity -------------------------------------------------------------

TEST(PackedRv32Sim, TrapsMatchReference) {
  // Fetch outside the program.
  {
    PackedRv32Simulator sim(assemble_rv32("nop\n"));
    EXPECT_TRUE(sim.step());
    EXPECT_THROW(static_cast<void>(sim.step()), Rv32SimError);
  }
  // Out-of-range memory traffic, including the uint32 wraparound corner.
  {
    PackedRv32Simulator sim(assemble_rv32("li a0, -2\nlw a1, 0(a0)\nebreak\n"));
    EXPECT_THROW(static_cast<void>(sim.run()), Rv32SimError);
  }
  {
    PackedRv32Simulator sim(assemble_rv32("li a0, -2\nsh a1, 0(a0)\nebreak\n"));
    EXPECT_THROW(static_cast<void>(sim.run()), Rv32SimError);
  }
}

}  // namespace
}  // namespace art9::rv32
