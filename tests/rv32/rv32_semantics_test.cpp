// RV32 simulator semantics: a per-opcode property sweep against a host
// reference over random operands (parameterised gtest).
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"

namespace art9::rv32 {
namespace {

/// Runs `op a2, a0, a1` with the given operand values and returns a2.
uint32_t run_r_type(const char* mnemonic, int32_t a, int32_t b) {
  const std::string source = "li a0, " + std::to_string(a) + "\nli a1, " + std::to_string(b) +
                             "\n" + mnemonic + " a2, a0, a1\nebreak\n";
  Rv32Simulator sim(assemble_rv32(source));
  EXPECT_TRUE(sim.run().halted);
  return sim.reg(12);
}

struct RCase {
  const char* mnemonic;
  std::function<uint32_t(uint32_t, uint32_t)> reference;
};

class Rv32RSemantics : public ::testing::TestWithParam<std::size_t> {};

const std::vector<RCase>& r_cases() {
  auto s32 = [](uint32_t x) { return static_cast<int32_t>(x); };
  static const std::vector<RCase> kCases = {
      {"add", [](uint32_t a, uint32_t b) { return a + b; }},
      {"sub", [](uint32_t a, uint32_t b) { return a - b; }},
      {"and", [](uint32_t a, uint32_t b) { return a & b; }},
      {"or", [](uint32_t a, uint32_t b) { return a | b; }},
      {"xor", [](uint32_t a, uint32_t b) { return a ^ b; }},
      {"sll", [](uint32_t a, uint32_t b) { return a << (b & 31); }},
      {"srl", [](uint32_t a, uint32_t b) { return a >> (b & 31); }},
      {"sra",
       [s32](uint32_t a, uint32_t b) { return static_cast<uint32_t>(s32(a) >> (b & 31)); }},
      {"slt", [s32](uint32_t a, uint32_t b) { return s32(a) < s32(b) ? 1u : 0u; }},
      {"sltu", [](uint32_t a, uint32_t b) { return a < b ? 1u : 0u; }},
      {"mul", [](uint32_t a, uint32_t b) { return a * b; }},
      {"mulh",
       [s32](uint32_t a, uint32_t b) {
         return static_cast<uint32_t>(
             (static_cast<int64_t>(s32(a)) * static_cast<int64_t>(s32(b))) >> 32);
       }},
      {"mulhu",
       [](uint32_t a, uint32_t b) {
         return static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32);
       }},
      {"div",
       [s32](uint32_t a, uint32_t b) {
         if (b == 0) return 0xFFFFFFFFu;
         if (s32(a) == INT32_MIN && s32(b) == -1) return static_cast<uint32_t>(INT32_MIN);
         return static_cast<uint32_t>(s32(a) / s32(b));
       }},
      {"divu", [](uint32_t a, uint32_t b) { return b == 0 ? 0xFFFFFFFFu : a / b; }},
      {"rem",
       [s32](uint32_t a, uint32_t b) {
         if (b == 0) return a;
         if (s32(a) == INT32_MIN && s32(b) == -1) return 0u;
         return static_cast<uint32_t>(s32(a) % s32(b));
       }},
      {"remu", [](uint32_t a, uint32_t b) { return b == 0 ? a : a % b; }},
  };
  return kCases;
}

TEST_P(Rv32RSemantics, MatchesHostReference) {
  const RCase& c = r_cases()[GetParam()];
  std::mt19937_64 rng(GetParam() * 7919 + 3);
  std::uniform_int_distribution<int32_t> dist(-2000, 2000);
  // Random operands plus deliberate edge pairs.
  std::vector<std::pair<int32_t, int32_t>> pairs = {
      {0, 0}, {1, -1}, {-1, 1}, {INT32_MIN + 1, -1}, {2000, 0}, {0, 2000}, {-2000, 31}};
  for (int i = 0; i < 60; ++i) pairs.emplace_back(dist(rng), dist(rng));
  for (const auto& [a, b] : pairs) {
    const uint32_t expected = c.reference(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
    EXPECT_EQ(run_r_type(c.mnemonic, a, b), expected)
        << c.mnemonic << " " << a << ", " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRTypeOps, Rv32RSemantics,
                         ::testing::Range<std::size_t>(0, r_cases().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           return std::string(r_cases()[param_info.param].mnemonic);
                         });

TEST(Rv32Semantics, ImmediateOpsMatchRegisterOps) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int32_t> val(-2000, 2000);
  std::uniform_int_distribution<int32_t> imm(-2048, 2047);
  for (int i = 0; i < 40; ++i) {
    const int32_t a = val(rng);
    const int32_t k = imm(rng);
    const std::string source = "li a0, " + std::to_string(a) + "\nli a1, " + std::to_string(k) +
                               "\naddi a2, a0, " + std::to_string(k) +
                               "\nadd  a3, a0, a1\n"
                               "andi a4, a0, " + std::to_string(k & 2047) +
                               "\nxori a5, a0, " + std::to_string(k) + "\nebreak\n";
    Rv32Simulator sim(assemble_rv32(source));
    ASSERT_TRUE(sim.run().halted);
    EXPECT_EQ(sim.reg(12), sim.reg(13));
    EXPECT_EQ(sim.reg(14), static_cast<uint32_t>(a) & static_cast<uint32_t>(k & 2047));
    EXPECT_EQ(sim.reg(15), static_cast<uint32_t>(a) ^ static_cast<uint32_t>(k));
  }
}

TEST(Rv32Semantics, BranchesMatchComparisons) {
  std::mt19937_64 rng(100);
  std::uniform_int_distribution<int32_t> val(-50, 50);
  const std::vector<std::pair<const char*, std::function<bool(int32_t, int32_t)>>> branches = {
      {"beq", [](int32_t a, int32_t b) { return a == b; }},
      {"bne", [](int32_t a, int32_t b) { return a != b; }},
      {"blt", [](int32_t a, int32_t b) { return a < b; }},
      {"bge", [](int32_t a, int32_t b) { return a >= b; }},
      {"bltu",
       [](int32_t a, int32_t b) { return static_cast<uint32_t>(a) < static_cast<uint32_t>(b); }},
      {"bgeu",
       [](int32_t a, int32_t b) { return static_cast<uint32_t>(a) >= static_cast<uint32_t>(b); }},
  };
  for (const auto& [mnemonic, reference] : branches) {
    for (int i = 0; i < 30; ++i) {
      const int32_t a = val(rng);
      const int32_t b = i % 5 == 0 ? a : val(rng);  // force some equal pairs
      const std::string source = "li a0, " + std::to_string(a) + "\nli a1, " +
                                 std::to_string(b) + "\nli a2, 0\n" + mnemonic +
                                 " a0, a1, taken\nli a2, 1\ntaken: ebreak\n";
      Rv32Simulator sim(assemble_rv32(source));
      ASSERT_TRUE(sim.run().halted);
      // a2 stays 0 iff the branch was taken.
      EXPECT_EQ(sim.reg(12) == 0, reference(a, b)) << mnemonic << " " << a << " " << b;
    }
  }
}

}  // namespace
}  // namespace art9::rv32
