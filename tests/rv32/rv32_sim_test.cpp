// RV32 assembler + functional simulator semantics.
#include "rv32/rv32_sim.hpp"

#include <gtest/gtest.h>

#include "rv32/rv32_assembler.hpp"

namespace art9::rv32 {
namespace {

Rv32Simulator run(const std::string& source) {
  Rv32Simulator sim(assemble_rv32(source));
  const Rv32RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  return sim;
}

TEST(Rv32Sim, ArithmeticBasics) {
  auto sim = run(R"(
    li   a0, 100
    addi a1, a0, -30
    add  a2, a0, a1
    sub  a3, a0, a1
    slli a4, a1, 2
    ebreak
)");
  EXPECT_EQ(sim.reg(10), 100u);
  EXPECT_EQ(sim.reg(11), 70u);
  EXPECT_EQ(sim.reg(12), 170u);
  EXPECT_EQ(sim.reg(13), 30u);
  EXPECT_EQ(sim.reg(14), 280u);
}

TEST(Rv32Sim, X0IsHardwiredZero) {
  auto sim = run("addi zero, zero, 5\nadd a0, zero, zero\nebreak\n");
  EXPECT_EQ(sim.reg(0), 0u);
  EXPECT_EQ(sim.reg(10), 0u);
}

TEST(Rv32Sim, LogicAndShifts) {
  auto sim = run(R"(
    li   a0, 0x0F0
    li   a1, 0x0FF
    and  a2, a0, a1
    or   a3, a0, a1
    xor  a4, a0, a1
    srli a5, a1, 4
    li   t0, -16
    srai t1, t0, 2
    sra  t2, t0, a2  ; shift by (0xF0 & 31) = 16
    ebreak
)");
  EXPECT_EQ(sim.reg(12), 0x0F0u);
  EXPECT_EQ(sim.reg(13), 0x0FFu);
  EXPECT_EQ(sim.reg(14), 0x00Fu);
  EXPECT_EQ(sim.reg(15), 0x00Fu);
  EXPECT_EQ(sim.reg(6), static_cast<uint32_t>(-4));
  EXPECT_EQ(sim.reg(7), static_cast<uint32_t>(-1));
}

TEST(Rv32Sim, SetLessThan) {
  auto sim = run(R"(
    li   a0, -5
    li   a1, 3
    slt  a2, a0, a1
    sltu a3, a0, a1   ; -5 unsigned is huge
    slti a4, a1, 10
    sltiu a5, a1, 2
    ebreak
)");
  EXPECT_EQ(sim.reg(12), 1u);
  EXPECT_EQ(sim.reg(13), 0u);
  EXPECT_EQ(sim.reg(14), 1u);
  EXPECT_EQ(sim.reg(15), 0u);
}

TEST(Rv32Sim, BranchesAndLoop) {
  auto sim = run(R"(
    li   a0, 0       ; sum
    li   a1, 1       ; i
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    li   t0, 11
    blt  a1, t0, loop
    ebreak
)");
  EXPECT_EQ(sim.reg(10), 55u);
}

TEST(Rv32Sim, MemoryAccess) {
  auto sim = run(R"(
.data
.org 64
vals: .word 123, -456
.text
    li   a0, 64
    lw   a1, 0(a0)
    lw   a2, 4(a0)
    add  a3, a1, a2
    sw   a3, 8(a0)
    lb   a4, 0(a0)   ; low byte of 123
    lbu  a5, 4(a0)   ; low byte of -456 = 0x38
    ebreak
)");
  EXPECT_EQ(sim.reg(11), 123u);
  EXPECT_EQ(static_cast<int32_t>(sim.reg(12)), -456);
  EXPECT_EQ(sim.load_word(72), static_cast<uint32_t>(-333));
  EXPECT_EQ(sim.reg(14), 123u);
  EXPECT_EQ(sim.reg(15), 0x38u);
}

TEST(Rv32Sim, CallAndReturn) {
  auto sim = run(R"(
    li   a0, 5
    call double_it
    mv   a1, a0
    ebreak
double_it:
    add  a0, a0, a0
    ret
)");
  EXPECT_EQ(sim.reg(11), 10u);
}

TEST(Rv32Sim, MulDivSemantics) {
  auto sim = run(R"(
    li   a0, -7
    li   a1, 3
    mul  a2, a0, a1
    div  a3, a0, a1
    rem  a4, a0, a1
    li   t0, 0
    div  a5, a0, t0    ; div by zero -> -1
    rem  a6, a0, t0    ; rem by zero -> dividend
    ebreak
)");
  EXPECT_EQ(static_cast<int32_t>(sim.reg(12)), -21);
  EXPECT_EQ(static_cast<int32_t>(sim.reg(13)), -2);
  EXPECT_EQ(static_cast<int32_t>(sim.reg(14)), -1);
  EXPECT_EQ(sim.reg(15), 0xFFFFFFFFu);
  EXPECT_EQ(static_cast<int32_t>(sim.reg(16)), -7);
}

TEST(Rv32Sim, MulhVariants) {
  auto sim = run(R"(
    li   a0, 0x10000
    li   a1, 0x10000
    mulhu a2, a0, a1
    mulh  a3, a0, a1
    ebreak
)");
  EXPECT_EQ(sim.reg(12), 1u);
  EXPECT_EQ(sim.reg(13), 1u);
}

TEST(Rv32Sim, PseudoInstructions) {
  auto sim = run(R"(
    li   a0, 100000     ; needs lui+addi
    li   a1, -1
    beqz zero, over
    li   a2, 1
over:
    bnez a1, over2
    li   a3, 1
over2:
    ebreak
)");
  EXPECT_EQ(sim.reg(10), 100000u);
  EXPECT_EQ(sim.reg(12), 0u);
  EXPECT_EQ(sim.reg(13), 0u);
}

TEST(Rv32Sim, ObserverStream) {
  Rv32Simulator sim(assemble_rv32("li a0, 3\nbeqz a0, skip\nli a1, 1\nskip: ebreak\n"));
  std::vector<Rv32Retired> trace;
  const Rv32RunStats stats = sim.run(1000, [&](const Rv32Retired& r) { trace.push_back(r); });
  EXPECT_TRUE(stats.halted);
  ASSERT_EQ(trace.size(), 4u);  // includes the ebreak
  EXPECT_EQ(trace[0].inst.op, Rv32Op::kAddi);
  EXPECT_EQ(trace[1].inst.op, Rv32Op::kBeq);
  EXPECT_FALSE(trace[1].taken);
  EXPECT_EQ(trace[3].inst.op, Rv32Op::kEbreak);
}

TEST(Rv32Sim, ScopedRunObserverRestoresInstalledOne) {
  // A per-run observer is installed for that run only: an observer set
  // via set_observer must survive it (it feeds the cycle models across
  // multiple run() calls).
  Rv32Simulator sim(assemble_rv32("loop:\n  addi t0, t0, 1\n  j loop\n"));
  uint64_t persistent = 0;
  uint64_t scoped = 0;
  sim.set_observer([&](const Rv32Retired&) { ++persistent; });
  static_cast<void>(sim.run(4));
  EXPECT_EQ(persistent, 4u);
  static_cast<void>(sim.run(4, [&](const Rv32Retired&) { ++scoped; }));
  EXPECT_EQ(scoped, 4u);
  EXPECT_EQ(persistent, 4u);  // not fired during the scoped run
  static_cast<void>(sim.run(4));
  EXPECT_EQ(persistent, 8u);  // restored, not cleared
}

TEST(Rv32Sim, FetchOutsideProgramThrows) {
  Rv32Simulator sim(assemble_rv32("nop\n"));
  sim.step();
  EXPECT_THROW(sim.step(), Rv32SimError);
}

TEST(Rv32Sim, LazyBaselineMatchesPreDecoded) {
  const Rv32Program program = assemble_rv32(R"(
    li   a0, 0
    li   a1, 1
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    li   t0, 11
    blt  a1, t0, loop
    ebreak
)");
  Rv32Simulator predecoded(program);
  LazyRv32Simulator lazy(program);
  EXPECT_EQ(predecoded.run(), lazy.run());
  EXPECT_EQ(predecoded.state(), lazy.state());
  EXPECT_EQ(predecoded.reg(10), 55u);
}

// Regression: out-of-range data traffic must raise Rv32SimError naming
// the faulting address — including addresses whose `address + size`
// wraps uint32_t, which the seed's SH/SW checks missed (a store at
// 0xFFFFFFFE wrapped past the bounds test straight into ram_[huge]).
TEST(Rv32Sim, OutOfRangeAccessRaisesWithFaultingAddress) {
  const auto expect_oob = [](const std::string& source) {
    SCOPED_TRACE(source);
    // Both loops share the bounds logic; check them independently.
    Rv32Simulator predecoded(assemble_rv32(source));
    EXPECT_THROW(static_cast<void>(predecoded.run()), Rv32SimError);
    LazyRv32Simulator lazy(assemble_rv32(source));
    EXPECT_THROW(static_cast<void>(lazy.run()), Rv32SimError);
  };
  expect_oob("li a0, -2\nsw a1, 0(a0)\nebreak\n");   // wraps address + 4
  expect_oob("li a0, -1\nsh a1, 0(a0)\nebreak\n");   // wraps address + 2
  expect_oob("li a0, -1\nsb a1, 0(a0)\nebreak\n");
  expect_oob("li a0, -2\nlw a1, 0(a0)\nebreak\n");
  expect_oob("li a0, -1\nlbu a1, 0(a0)\nebreak\n");
  expect_oob("lui a0, 1024\nlw a1, 0(a0)\nebreak\n");  // just past 1 MiB

  try {
    Rv32Simulator sim(assemble_rv32("li a0, -2\nsw a1, 0(a0)\nebreak\n"));
    static_cast<void>(sim.run());
    FAIL() << "expected Rv32SimError";
  } catch (const Rv32SimError& e) {
    EXPECT_NE(std::string(e.what()).find("4294967294"), std::string::npos) << e.what();
  }
}

TEST(Rv32Sim, DirectAccessorsBoundsChecked) {
  Rv32Simulator sim(assemble_rv32("nop\n"));
  EXPECT_THROW(static_cast<void>(sim.load_word(0xFFFFFFFCu)), Rv32SimError);
  EXPECT_THROW(static_cast<void>(sim.load_byte(0xFFFFFFFFu)), Rv32SimError);
  EXPECT_THROW(sim.store_word(0xFFFFFFFEu, 1), Rv32SimError);
  EXPECT_THROW(sim.store_word((1u << 20) - 2, 1), Rv32SimError);  // straddles the end
  sim.store_word((1u << 20) - 4, 0xAABBCCDDu);                    // last full word is fine
  EXPECT_EQ(sim.load_word((1u << 20) - 4), 0xAABBCCDDu);
}

TEST(Rv32AsmErrors, Diagnostics) {
  EXPECT_THROW(assemble_rv32("bogus a0, a1\n"), Rv32AsmError);
  EXPECT_THROW(assemble_rv32("addi a0, a1, 5000\n"), Rv32AsmError);
  EXPECT_THROW(assemble_rv32("beq a0, a1, nowhere\n"), Rv32AsmError);
  EXPECT_THROW(assemble_rv32("lw a0, 0(q9)\n"), Rv32AsmError);
  EXPECT_THROW(assemble_rv32(".data\nadd a0, a0, a0\n"), Rv32AsmError);
}

}  // namespace
}  // namespace art9::rv32
