// Golden-trace regression: locks the rendered per-cycle pipeline trace of
// one small fixed program, so hot-loop refactors (pre-decoded dispatch,
// batching, ...) cannot silently change observable execution order, stall
// placement, or the trace text format itself.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/packed_pipeline.hpp"
#include "sim/pipeline.hpp"
#include "sim/trace.hpp"

namespace art9::sim {
namespace {

// A program that exercises every trace event: a load-use stall, a taken
// backward branch (flush), straight-line ALU traffic and the halt.
constexpr const char* kProgram = R"(
    LIMM T1, 60
    LIMM T2, 2
    STORE T2, 0(T1)
loop:
    LOAD  T3, 0(T1)
    ADD   T4, T3
    ADDI  T2, -1
    MV    T5, T2
    COMP  T5, T0
    BNE   T5, 0, loop
    HALT
)";

template <class Simulator>
std::vector<std::string> rendered_trace() {
  Simulator sim(isa::assemble(kProgram));
  std::vector<std::string> lines;
  sim.set_tracer([&](const CycleTrace& t) { lines.push_back(render_trace(t)); });
  sim.run();
  return lines;
}

/// The locked golden trace (2026-07): regenerate only for a *deliberate*
/// trace-format or microarchitecture change, never for a hot-loop
/// refactor.  Both pipeline datapaths must render it verbatim.
const std::vector<std::string>& golden_trace();

template <class Simulator>
void expect_matches_golden() {
  const std::vector<std::string> actual = rendered_trace<Simulator>();
  const std::vector<std::string>& expected = golden_trace();
  std::ostringstream dump;
  for (const std::string& line : actual) dump << line << '\n';
  ASSERT_EQ(actual.size(), expected.size()) << "full trace:\n" << dump.str();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "cycle index " << i << "\nfull trace:\n" << dump.str();
  }
}

TEST(TraceGolden, RenderedTraceIsStable) { expect_matches_golden<PipelineSimulator>(); }

// Tracer parity: the plane-packed pipeline streams the *identical*
// CycleTrace sequence — same stage occupancy, same stall/flush/halt
// events, same rendering — as the reference datapath.
TEST(TraceGolden, PackedPipelineRendersIdenticalTrace) {
  expect_matches_golden<PackedPipelineSimulator>();
  EXPECT_EQ(rendered_trace<PackedPipelineSimulator>(), rendered_trace<PipelineSimulator>());
}

const std::vector<std::string>& golden_trace() {

  static const std::vector<std::string> kExpected = {
      "     1 | IF@0 | ID - | EX - | MEM - | WB -",
      "     2 | IF@1 | ID 0:LUI T1, 0 | EX - | MEM - | WB -",
      "     3 | IF@2 | ID 1:LI T1, 60 | EX 0:LUI T1, 0 | MEM - | WB -",
      "     4 | IF@3 | ID 2:LUI T2, 0 | EX 1:LI T1, 60 | MEM 0:LUI T1, 0 | WB -",
      "     5 | IF@4 | ID 3:LI T2, 2 | EX 2:LUI T2, 0 | MEM 1:LI T1, 60 | WB 0:LUI T1, 0",
      "     6 | IF@5 | ID 4:STORE T2, 0(T1) | EX 3:LI T2, 2 | MEM 2:LUI T2, 0 | WB 1:LI T1, 60",
      "     7 | IF@6 | ID 5:LOAD T3, 0(T1) | EX 4:STORE T2, 0(T1) | MEM 3:LI T2, 2 | WB 2:LUI "
      "T2, 0",
      "     8 | IF@7 | ID 6:ADD T4, T3 | EX 5:LOAD T3, 0(T1) | MEM 4:STORE T2, 0(T1) | WB 3:LI "
      "T2, 2  <load-use stall>",
      "     9 | IF@7 | ID 6:ADD T4, T3 | EX - | MEM 5:LOAD T3, 0(T1) | WB 4:STORE T2, 0(T1)",
      "    10 | IF@8 | ID 7:ADDI T2, -1 | EX 6:ADD T4, T3 | MEM - | WB 5:LOAD T3, 0(T1)",
      "    11 | IF@9 | ID 8:MV T5, T2 | EX 7:ADDI T2, -1 | MEM 6:ADD T4, T3 | WB -",
      "    12 | IF@10 | ID 9:COMP T5, T0 | EX 8:MV T5, T2 | MEM 7:ADDI T2, -1 | WB 6:ADD T4, T3",
      "    13 | IF@11 | ID 10:BNE T5, 0, -5 | EX 9:COMP T5, T0 | MEM 8:MV T5, T2 | WB 7:ADDI "
      "T2, -1  <flush>",
      "    14 | IF@5 | ID - | EX 10:BNE T5, 0, -5 | MEM 9:COMP T5, T0 | WB 8:MV T5, T2",
      "    15 | IF@6 | ID 5:LOAD T3, 0(T1) | EX - | MEM 10:BNE T5, 0, -5 | WB 9:COMP T5, T0",
      "    16 | IF@7 | ID 6:ADD T4, T3 | EX 5:LOAD T3, 0(T1) | MEM - | WB 10:BNE T5, 0, -5  "
      "<load-use stall>",
      "    17 | IF@7 | ID 6:ADD T4, T3 | EX - | MEM 5:LOAD T3, 0(T1) | WB -",
      "    18 | IF@8 | ID 7:ADDI T2, -1 | EX 6:ADD T4, T3 | MEM - | WB 5:LOAD T3, 0(T1)",
      "    19 | IF@9 | ID 8:MV T5, T2 | EX 7:ADDI T2, -1 | MEM 6:ADD T4, T3 | WB -",
      "    20 | IF@10 | ID 9:COMP T5, T0 | EX 8:MV T5, T2 | MEM 7:ADDI T2, -1 | WB 6:ADD T4, T3",
      "    21 | IF@11 | ID 10:BNE T5, 0, -5 | EX 9:COMP T5, T0 | MEM 8:MV T5, T2 | WB 7:ADDI "
      "T2, -1",
      "    22 | IF@12 | ID 11:JAL T0, 0 | EX 10:BNE T5, 0, -5 | MEM 9:COMP T5, T0 | WB 8:MV "
      "T5, T2  <halt>",
      "    23 | IF-- | ID - | EX 11:JAL T0, 0 | MEM 10:BNE T5, 0, -5 | WB 9:COMP T5, T0",
      "    24 | IF-- | ID - | EX - | MEM 11:JAL T0, 0 | WB 10:BNE T5, 0, -5",
      "    25 | IF-- | ID - | EX - | MEM - | WB 11:JAL T0, 0  <halt>",
  };
  return kExpected;
}

TEST(TraceGolden, TraceIsDeterministic) {
  EXPECT_EQ(rendered_trace<PipelineSimulator>(), rendered_trace<PipelineSimulator>());
  EXPECT_EQ(rendered_trace<PackedPipelineSimulator>(), rendered_trace<PackedPipelineSimulator>());
}

}  // namespace
}  // namespace art9::sim
