// Static branch prediction extension: backward-taken prediction and JAL
// target folding remove the taken bubble when they hit; mispredictions
// pay exactly the old price; architectural state never changes.
#include <gtest/gtest.h>

#include <random>

#include "core/progen.hpp"
#include "isa/assembler.hpp"
#include "sim/functional_sim.hpp"
#include "sim/pipeline.hpp"

namespace art9::sim {
namespace {

PipelineConfig predicted() {
  PipelineConfig config;
  config.static_prediction = true;
  return config;
}

TEST(Prediction, BackwardLoopBranchesBecomeFree) {
  const char* source = R"(
    LIMM T1, 10
    LIMM T2, 0
    LIMM T3, 0
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T4, T1
    COMP T4, T3
    BNE  T4, 0, loop
    HALT
)";
  PipelineSimulator base(isa::assemble(source));
  const SimStats base_stats = base.run();

  PipelineSimulator pred(isa::assemble(source), predicted());
  const SimStats pred_stats = pred.run();

  EXPECT_EQ(pred.reg_int(2), 55);
  EXPECT_EQ(pred.state().trf, base.state().trf);
  // 9 taken back-branches hit; the final not-taken iteration mispredicts.
  EXPECT_EQ(pred_stats.predictions_correct, 9u);
  EXPECT_EQ(pred_stats.predictions_wrong, 1u);
  // 9 bubbles saved, 1 new bubble paid: net 8 cycles faster.
  EXPECT_EQ(pred_stats.cycles + 8, base_stats.cycles);
}

TEST(Prediction, JalTargetFolding) {
  const char* source = "JAL T1, over\nNOP\nover: HALT\n";
  PipelineSimulator base(isa::assemble(source));
  const SimStats base_stats = base.run();
  PipelineSimulator pred(isa::assemble(source), predicted());
  const SimStats pred_stats = pred.run();
  EXPECT_EQ(pred_stats.predictions_correct, 1u);
  EXPECT_EQ(pred_stats.cycles + 1, base_stats.cycles);
  EXPECT_EQ(pred.reg_int(1), 1);  // link still written
}

TEST(Prediction, ForwardBranchesStillPredictNotTaken) {
  const char* source = R"(
    ADDI T1, 1
    BEQ  T1, +, skip
    ADDI T2, 5
skip:
    HALT
)";
  PipelineSimulator pred(isa::assemble(source), predicted());
  const SimStats stats = pred.run();
  // Forward taken branch: no prediction, ordinary flush.
  EXPECT_EQ(stats.predictions_correct, 0u);
  EXPECT_EQ(stats.predictions_wrong, 0u);
  EXPECT_EQ(stats.flush_taken_branch, 1u);
}

TEST(Prediction, MispredictionPaysOneBubble) {
  // A backward branch that is NOT taken on its only execution.
  const char* source = R"(
    JAL  T0, entry
back:
    HALT
entry:
    ADDI T1, 1
    BEQ  T1, -, back     ; backward, predicted taken, actually not taken
    ADDI T2, 7
    HALT
)";
  PipelineSimulator pred(isa::assemble(source), predicted());
  const SimStats stats = pred.run();
  EXPECT_EQ(pred.reg_int(2), 7);  // fall-through path executed
  EXPECT_EQ(stats.predictions_wrong, 1u);
}

TEST(Prediction, DifferentialAgainstGoldenModel) {
  core::Art9GenOptions options;
  options.min_length = 40;
  options.max_length = 150;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 rng(seed * 52361);
    const isa::Program program = core::generate_art9_program(rng, options);
    FunctionalSimulator golden(program);
    ASSERT_EQ(golden.run(2'000'000).halt, HaltReason::kHalted) << seed;
    PipelineSimulator pred(program, predicted());
    ASSERT_EQ(pred.run().halt, HaltReason::kHalted) << seed;
    EXPECT_EQ(pred.state().trf, golden.state().trf) << "seed=" << seed;
    // (The pipeline's resting fetch-PC after halt is microarchitectural,
    // not architectural state, so it is not compared.)
  }
}

TEST(Prediction, NeverSlowerOnBenchStyleLoops) {
  // On loop-heavy code the predictor should strictly reduce cycles.
  const char* source = R"(
    LIMM T1, 30
    LIMM T2, 0
    LIMM T3, 0
outer:
    LIMM T5, 3
inner:
    ADDI T2, 1
    ADDI T5, -1
    MV   T4, T5
    COMP T4, T3
    BNE  T4, 0, inner
    ADDI T1, -1
    MV   T4, T1
    COMP T4, T3
    BNE  T4, 0, outer
    HALT
)";
  PipelineSimulator base(isa::assemble(source));
  PipelineSimulator pred(isa::assemble(source), predicted());
  const SimStats b = base.run();
  const SimStats p = pred.run();
  EXPECT_EQ(pred.reg_int(2), 90);
  EXPECT_LT(p.cycles, b.cycles);
  EXPECT_GT(p.predictions_correct, 80u);
}

}  // namespace
}  // namespace art9::sim
