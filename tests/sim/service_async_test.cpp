// The async face of SimulationService: JobHandle semantics, the
// JobOutcome taxonomy, deadlines, cooperative cancellation, completion
// callbacks — and the acceptance gate of the checkpoint-retry path: a
// job faulted mid-run resumes from its last checkpoint and finishes with
// MachineState/SimStats bit-identical to an uninterrupted run, at any
// thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/fault_injection.hpp"
#include "sim/service.hpp"

namespace art9::sim {
namespace {

using namespace std::chrono_literals;

/// ~600 retired instructions, then halts: long enough to slice and
/// checkpoint, short enough to run thousands of times in a test.
std::shared_ptr<const DecodedImage> loop_image() {
  static const std::shared_ptr<const DecodedImage> kImage = decode(isa::assemble(R"(
        LIMM T1, 100
        LIMM T2, 0
      loop:
        ADD  T2, T1
        ADDI T1, -1
        MV   T3, T1
        COMP T3, T4
        BNE  T3, 0, loop
        HALT
      )"));
  return kImage;
}

/// Never halts — the cancellation / deadline workload.
std::shared_ptr<const DecodedImage> spin_image() {
  static const std::shared_ptr<const DecodedImage> kImage =
      decode(isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n"));
  return kImage;
}

std::shared_ptr<const rv32::Rv32DecodedImage> rv32_loop_image() {
  static const std::shared_ptr<const rv32::Rv32DecodedImage> kImage =
      rv32::decode(rv32::assemble_rv32(R"(
        li   a0, 0
        li   a1, 1
      loop:
        add  a0, a0, a1
        addi a1, a1, 1
        li   t0, 200
        blt  a1, t0, loop
        ebreak
      )"));
  return kImage;
}

TEST(JobHandle, DefaultConstructedIsEmpty) {
  JobHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.ready());
  EXPECT_FALSE(handle.started());
  handle.cancel();  // no-op, must not crash
  EXPECT_THROW(handle.wait(), std::logic_error);
  EXPECT_THROW(static_cast<void>(handle.result()), std::logic_error);
}

TEST(JobHandle, SubmitResolvesCompleted) {
  SimulationService service(2);
  JobHandle handle = service.submit(loop_image(), EngineKind::kFunctional);
  ASSERT_TRUE(handle.valid());
  const JobResult& result = handle.result();
  EXPECT_TRUE(handle.ready());
  EXPECT_TRUE(handle.started());
  EXPECT_EQ(result.outcome, JobOutcome::kCompleted);
  EXPECT_EQ(result.run.halt, HaltReason::kHalted);
  EXPECT_GT(result.run.stats.instructions, 0u);
  EXPECT_TRUE(handle.wait_for(0ms));
}

TEST(JobHandle, ResultsOutliveTheService) {
  JobHandle handle;
  {
    SimulationService service(1);
    handle = service.submit(loop_image(), EngineKind::kPacked);
  }  // drain destructor: the job resolved before the pool joined
  ASSERT_TRUE(handle.ready());
  EXPECT_EQ(handle.result().outcome, JobOutcome::kCompleted);
}

TEST(JobHandle, CompletionCallbacksFireExactlyOnce) {
  SimulationService service(2);
  std::atomic<int> fired{0};
  JobHandle handle = service.submit(loop_image(), EngineKind::kFunctional);
  handle.on_complete([&](const JobResult& r) {
    EXPECT_EQ(r.outcome, JobOutcome::kCompleted);
    ++fired;
  });
  handle.wait();
  // A callback registered after resolution runs inline, immediately.
  handle.on_complete([&](const JobResult&) { ++fired; });
  EXPECT_EQ(fired.load(), 2);
}

TEST(ServiceOutcomes, BudgetExhaustedAttachesPartialRun) {
  SimulationService service(1);
  JobHandle handle = service.submit(spin_image(), EngineKind::kFunctional, RunOptions{1'000});
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kBudgetExhausted);
  EXPECT_EQ(result.run.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(result.run.stats.cycles, 1'000u);
  EXPECT_TRUE(result.run.state.is_art9());
}

TEST(ServiceOutcomes, TrappedJobCarriesTheTrapText) {
  isa::Program trap;  // falls off the end of the TIM
  trap.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  trap.entry = 0;
  SimulationService service(1);
  JobHandle handle = service.submit(decode(trap), EngineKind::kFunctional);
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kTrapped);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(result.retries, 0u);  // deterministic traps are never retried
}

TEST(ServiceOutcomes, DeadlineExpiresAQueuedJob) {
  // One worker, pinned by a slow job; the second job's 1 ms deadline
  // expires while it is still queued — it must resolve without running.
  SimulationService service(1);
  JobControls slow;
  slow.slice_steps = 1u << 14;  // tight slices: the blocker stays cancellable
  JobHandle blocker =
      service.submit(spin_image(), EngineKind::kFunctional, RunOptions{100'000'000}, slow);
  JobControls controls;
  controls.deadline = 1ms;
  JobHandle expired = service.submit(spin_image(), EngineKind::kFunctional, RunOptions{}, controls);
  std::this_thread::sleep_for(5ms);
  blocker.cancel();
  EXPECT_EQ(blocker.result().outcome, JobOutcome::kCancelled);
  EXPECT_EQ(expired.result().outcome, JobOutcome::kDeadlineExceeded);
  EXPECT_EQ(expired.result().run.stats.cycles, 0u);  // never dispatched
}

TEST(ServiceOutcomes, DeadlineCutsARunningJob) {
  SimulationService service(1);
  JobControls controls;
  controls.deadline = 20ms;
  controls.slice_steps = 1u << 14;
  JobHandle handle =
      service.submit(spin_image(), EngineKind::kFunctional, RunOptions{100'000'000'000}, controls);
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kDeadlineExceeded);
  EXPECT_GT(result.run.stats.cycles, 0u);  // it did run until the cut
  EXPECT_EQ(result.run.halt, HaltReason::kMaxCycles);
}

TEST(ServiceOutcomes, StalledJobTripsItsDeadline) {
  // The injected deadline stall: the worker wedges for 50 ms at step
  // 10'000, far past the job's 15 ms deadline.
  auto plan = std::make_shared<FaultPlan>();
  plan->stall_at_step = 10'000;
  plan->stall_for = 50ms;
  SimulationService service(1);
  JobControls controls;
  controls.deadline = 15ms;
  controls.slice_steps = 1u << 12;
  controls.fault = plan;
  JobHandle handle =
      service.submit(spin_image(), EngineKind::kFunctional, RunOptions{100'000'000'000}, controls);
  EXPECT_EQ(handle.result().outcome, JobOutcome::kDeadlineExceeded);
}

TEST(ServiceOutcomes, CancelledMidRun) {
  SimulationService service(1);
  JobControls controls;
  controls.slice_steps = 1u << 12;
  JobHandle handle =
      service.submit(spin_image(), EngineKind::kFunctional, RunOptions{100'000'000'000}, controls);
  while (!handle.started()) std::this_thread::yield();
  handle.cancel();
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kCancelled);
  EXPECT_EQ(result.run.halt, HaltReason::kMaxCycles);
}

TEST(ServiceOutcomes, FaultedWhenRetriesExhausted) {
  auto plan = std::make_shared<FaultPlan>();
  plan->throw_at_step = 50;
  plan->throw_count = 100;  // re-arms faster than any retry budget
  SimulationService service(1);
  JobControls controls;
  controls.retries = 2;
  controls.fault = plan;
  JobHandle handle = service.submit(spin_image(), EngineKind::kFunctional, RunOptions{}, controls);
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kFaulted);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_NE(result.error.find("transient fault"), std::string::npos);
}

TEST(ServiceOutcomes, NameCoversEveryOutcome) {
  EXPECT_EQ(job_outcome_name(JobOutcome::kCompleted), "completed");
  EXPECT_EQ(job_outcome_name(JobOutcome::kTrapped), "trapped");
  EXPECT_EQ(job_outcome_name(JobOutcome::kBudgetExhausted), "budget_exhausted");
  EXPECT_EQ(job_outcome_name(JobOutcome::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(job_outcome_name(JobOutcome::kCancelled), "cancelled");
  EXPECT_EQ(job_outcome_name(JobOutcome::kFaulted), "faulted");
}

/// The acceptance gate: with a single transient fault injected mid-run
/// and checkpoints every 128 steps, the job must retry from its last
/// checkpoint and finish bit-identical to an uninterrupted run — for
/// both ISAs, on functional kinds, at several pool widths.
TEST(CheckpointRetry, RecoveredRunIsBitIdenticalAtAnyThreadCount) {
  const RunOptions budget{100'000};

  std::unique_ptr<Engine> clean_art9 = make_engine(EngineKind::kFunctional, loop_image());
  const RunResult expected_art9 = clean_art9->run(budget);
  ASSERT_EQ(expected_art9.halt, HaltReason::kHalted);

  std::unique_ptr<Engine> clean_rv32 = make_engine(EngineKind::kRv32, rv32_loop_image());
  const RunResult expected_rv32 = clean_rv32->run(budget);
  ASSERT_EQ(expected_rv32.halt, HaltReason::kHalted);

  auto plan = std::make_shared<FaultPlan>(FaultPlan::seeded(20260808, 500));
  ASSERT_GT(plan->throw_at_step, 0u);

  for (unsigned threads : {1u, 2u, 8u}) {
    SimulationService service(threads);
    JobControls controls;
    controls.checkpoint_every = 128;
    controls.retries = 3;
    controls.fault = plan;

    JobHandle art9_job =
        service.submit(loop_image(), EngineKind::kFunctional, budget, controls);
    JobHandle rv32_job = service.submit(rv32_loop_image(), EngineKind::kRv32, budget, controls);

    const JobResult& recovered = art9_job.result();
    EXPECT_EQ(recovered.outcome, JobOutcome::kCompleted) << threads << " threads";
    EXPECT_GE(recovered.retries, 1u) << threads << " threads";
    EXPECT_TRUE(recovered.resumed) << threads << " threads";
    EXPECT_GT(recovered.checkpoints, 0u) << threads << " threads";
    EXPECT_EQ(recovered.run.state, expected_art9.state) << threads << " threads";
    EXPECT_EQ(recovered.run.stats, expected_art9.stats) << threads << " threads";

    const JobResult& recovered_rv32 = rv32_job.result();
    EXPECT_EQ(recovered_rv32.outcome, JobOutcome::kCompleted) << threads << " threads";
    EXPECT_GE(recovered_rv32.retries, 1u) << threads << " threads";
    EXPECT_EQ(recovered_rv32.run.state, expected_rv32.state) << threads << " threads";
    EXPECT_EQ(recovered_rv32.run.stats, expected_rv32.stats) << threads << " threads";
  }
}

TEST(CheckpointRetry, FaultBeforeFirstCheckpointRestartsFromScratch) {
  std::unique_ptr<Engine> clean = make_engine(EngineKind::kPacked, loop_image());
  const RunResult expected = clean->run();

  auto plan = std::make_shared<FaultPlan>();
  plan->throw_at_step = 10;  // before the first checkpoint at 256
  SimulationService service(1);
  JobControls controls;
  controls.checkpoint_every = 256;
  controls.retries = 1;
  controls.fault = plan;
  JobHandle handle = service.submit(loop_image(), EngineKind::kPacked, RunOptions{}, controls);
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kCompleted);
  EXPECT_EQ(result.retries, 1u);
  EXPECT_FALSE(result.resumed);  // nothing to resume from: a clean restart
  EXPECT_EQ(result.run.state, expected.state);
  EXPECT_EQ(result.run.stats, expected.stats);
}

TEST(CheckpointRetry, CorruptCheckpointIsDetectedAndDiscarded) {
  // The corrupt-then-detect oracle: the second serialized checkpoint
  // blob gets one bit flipped; deserialize-before-adopt must reject it
  // via the codec checksum, keep the first recovery point, and the
  // (fault-free otherwise) run still completes bit-identically.
  std::unique_ptr<Engine> clean = make_engine(EngineKind::kFunctional, loop_image());
  const RunResult expected = clean->run();

  auto plan = std::make_shared<FaultPlan>();
  plan->corrupt_checkpoint = 2;
  plan->seed = 7;
  SimulationService service(1);
  JobControls controls;
  controls.checkpoint_every = 100;
  controls.fault = plan;
  JobHandle handle = service.submit(loop_image(), EngineKind::kFunctional, RunOptions{}, controls);
  const JobResult& result = handle.result();
  EXPECT_EQ(result.outcome, JobOutcome::kCompleted);
  EXPECT_EQ(result.corrupt_checkpoints, 1u);
  EXPECT_GT(result.checkpoints, 0u);
  EXPECT_EQ(result.run.state, expected.state);
  EXPECT_EQ(result.run.stats, expected.stats);
}

TEST(CheckpointRetry, CheckpointedRunWithoutFaultsMatchesPlainRun) {
  // Slicing + checkpointing alone must not perturb results (the
  // accumulate_stats contract), including across the rv32 kinds.
  const RunOptions budget{50'000};
  for (EngineKind kind : {EngineKind::kFunctional, EngineKind::kPacked, EngineKind::kLazy}) {
    std::unique_ptr<Engine> clean = make_engine(kind, loop_image());
    const RunResult expected = clean->run(budget);
    SimulationService service(1);
    JobControls controls;
    controls.checkpoint_every = 64;
    controls.slice_steps = 100;
    JobHandle handle = service.submit(loop_image(), kind, budget, controls);
    const JobResult& result = handle.result();
    EXPECT_EQ(result.outcome, JobOutcome::kCompleted) << engine_kind_name(kind);
    EXPECT_EQ(result.run.state, expected.state) << engine_kind_name(kind);
    EXPECT_EQ(result.run.stats, expected.stats) << engine_kind_name(kind);
    EXPECT_GT(result.checkpoints, 0u) << engine_kind_name(kind);
  }
}

}  // namespace
}  // namespace art9::sim
