// The plane-packed SWAR backend must be observationally identical to the
// reference functional simulator: bit-identical ArchState (registers, TDM
// contents *and* access counters, PC) and SimStats on the full translated
// benchmark corpus (Dhrystone, Sobel, GEMM, bubble sort), on an
// every-opcode assembly corpus, and through the BatchRunner backend
// switch.  Also locks the decode-time immediate validation: a malformed
// immediate now raises SimError at image construction, not mid-run.
#include "sim/packed_sim.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/batch_runner.hpp"
#include "sim/functional_sim.hpp"
#include "xlat/framework.hpp"

namespace art9::sim {
namespace {

isa::Program translated(const core::BenchmarkSources& bench) {
  xlat::SoftwareFramework framework;
  return framework.translate(rv32::assemble_rv32(bench.rv32)).program;
}

void expect_bit_identical(const isa::Program& program, uint64_t budget = 100'000'000) {
  const std::shared_ptr<const DecodedImage> image = decode(program);
  FunctionalSimulator reference(image);
  PackedFunctionalSimulator packed(image);
  const SimStats ref_stats = reference.run(budget);
  const SimStats packed_stats = packed.run(budget);
  EXPECT_EQ(ref_stats, packed_stats);
  const ArchState unpacked = packed.unpack_state();
  EXPECT_EQ(reference.state().trf, unpacked.trf);
  EXPECT_EQ(reference.state().pc, unpacked.pc);
  // TernaryMemory operator== covers contents and access counters.
  EXPECT_EQ(reference.state().tdm, unpacked.tdm);
  EXPECT_EQ(reference.state(), unpacked);
}

// --- the acceptance corpus: all four paper benchmarks ------------------------

TEST(PackedSim, BitIdenticalOnBenchmarkCorpus) {
  for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
    SCOPED_TRACE(bench->name);
    expect_bit_identical(translated(*bench));
  }
}

// --- every-opcode assembly corpus --------------------------------------------

/// Small programs that collectively execute all 24 opcodes, both branch
/// polarities, register and immediate shifts, LUI/LI field insertion,
/// memory traffic and the never-halts budget path.
const std::array<std::string, 7>& opcode_corpus() {
  static const std::array<std::string, 7> kPrograms = {
      // Arithmetic + logic + inverters.
      R"(
        LIMM T1, 1234
        LIMM T2, -77
        ADD  T1, T2
        SUB  T2, T1
        AND  T1, T2
        OR   T2, T1
        XOR  T1, T2
        STI  T3, T1
        NTI  T4, T1
        PTI  T5, T2
        MV   T6, T5
        COMP T6, T4
        HALT
      )",
      // Immediate forms incl. LUI/LI partial writes and ANDI.
      R"(
        LIMM T1, -9841
        ANDI T1, 13
        ADDI T1, -13
        LUI  T2, -40
        LI   T2, 121
        LUI  T3, 40
        LI   T3, -121
        HALT
      )",
      // Register and immediate shifts, incl. amounts from a register.
      R"(
        LIMM T1, 9841
        LIMM T2, 5
        SR   T1, T2
        SL   T1, T2
        SRI  T1, 8
        SLI  T1, 3
        HALT
      )",
      // Branch polarities: all three condition trits, taken and fallthrough.
      R"(
        LIMM T1, 1
        COMP T1, T0
        BEQ  T1, +, fwd
        LIMM T7, 111
      fwd:
        BNE  T1, -, fwd2
        LIMM T7, 222
      fwd2:
        BEQ  T1, 0, never
        ADDI T6, 4
      never:
        HALT
      )",
      // JAL / JALR call-and-return with link registers.
      R"(
        LIMM T5, 0
        JAL  T8, sub
        ADDI T5, 2
        HALT
      sub:
        ADDI T5, 5
        JALR T0, T8, 0
      )",
      // Memory traffic: negative addresses, overlapping rows.
      R"(
        LIMM T1, -9000
        LIMM T2, 42
        STORE T2, -3(T1)
        LOAD  T3, -3(T1)
        STORE T3, 13(T1)
        LOAD  T4, 13(T1)
        HALT
      )",
      // Never halts: the step-budget path must round-trip identically.
      "loop:\n  ADDI T1, 1\n  JAL T0, loop\n",
  };
  return kPrograms;
}

TEST(PackedSim, BitIdenticalOnOpcodeCorpus) {
  for (const std::string& source : opcode_corpus()) {
    expect_bit_identical(isa::assemble(source), 2'000);
  }
}

TEST(PackedSim, AgreesWithLazyBaseline) {
  for (const std::string& source : opcode_corpus()) {
    const isa::Program program = isa::assemble(source);
    LazyFunctionalSimulator lazy(program);
    PackedFunctionalSimulator packed(program);
    const SimStats lazy_stats = lazy.run(2'000);
    const SimStats packed_stats = packed.run(2'000);
    EXPECT_EQ(lazy_stats, packed_stats);
    EXPECT_EQ(lazy.state(), packed.unpack_state());
  }
}

// --- BatchRunner backend switch ----------------------------------------------

TEST(PackedSim, BatchRunnerPackedBackendMatchesReference) {
  BatchRunner reference(2'000, SimBackend::kReference);
  BatchRunner packed(2'000, SimBackend::kPacked);
  EXPECT_EQ(packed.backend(), SimBackend::kPacked);
  for (const std::string& source : opcode_corpus()) {
    const isa::Program program = isa::assemble(source);
    reference.add(program);
    packed.add(program);
  }
  const auto ref_results = reference.run_all();
  const auto packed_results = packed.run_all();
  ASSERT_EQ(ref_results.size(), packed_results.size());
  for (std::size_t i = 0; i < ref_results.size(); ++i) {
    EXPECT_EQ(ref_results[i].state, packed_results[i].state) << "job " << i;
    EXPECT_EQ(ref_results[i].stats, packed_results[i].stats) << "job " << i;
  }
}

// --- trap parity + decode-time immediate validation ---------------------------

TEST(PackedSim, UninitialisedFetchTrapsLikeReference) {
  // Fall off the end of a program with no halt: both backends must throw.
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  program.entry = 0;
  FunctionalSimulator reference(program);
  PackedFunctionalSimulator packed(program);
  EXPECT_TRUE(reference.step());
  EXPECT_TRUE(packed.step());
  EXPECT_THROW(static_cast<void>(reference.step()), SimError);
  EXPECT_THROW(static_cast<void>(packed.step()), SimError);
}

TEST(PackedSim, MalformedImmediateThrowsAtDecodeTime) {
  // ADDI's imm3 range is [-13, 13]; 500 is unencodable.  The decoder must
  // reject it at image-construction time — previously the reference path
  // only threw when the instruction first *executed*.
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 500});
  program.code.push_back(isa::Instruction::halt());
  program.entry = 0;
  EXPECT_THROW(static_cast<void>(decode(program)), SimError);
  // Same for the other pre-encoded immediate forms.
  for (isa::Opcode op : {isa::Opcode::kAndi, isa::Opcode::kLui, isa::Opcode::kLi}) {
    isa::Program p;
    p.code.push_back(isa::Instruction{op, 1, 0, ternary::kTritZ, 10'000});
    p.entry = 0;
    EXPECT_THROW(static_cast<void>(decode(p)), SimError) << isa::mnemonic(op);
  }
}

TEST(PackedSim, InspectionAccessorsDecodeOnDemand) {
  PackedFunctionalSimulator sim(isa::assemble("LIMM T1, -4567\nHALT\n"));
  static_cast<void>(sim.run());
  EXPECT_EQ(sim.reg_int(1), -4567);
  EXPECT_EQ(sim.reg(1), ternary::Word9::from_int(-4567));
  EXPECT_EQ(sim.reg_packed(1), ternary::BctWord9::encode(sim.reg(1)));
}

}  // namespace
}  // namespace art9::sim
