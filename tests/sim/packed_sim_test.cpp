// Packed-backend specifics: decode-time immediate validation, trap
// parity with the reference path, and the inspection-boundary accessors.
// Corpus-wide bit-identity across backends lives in the parameterized
// engine conformance suite (engine_conformance_test.cpp).
#include "sim/packed_sim.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/functional_sim.hpp"

namespace art9::sim {
namespace {

TEST(PackedSim, UninitialisedFetchTrapsLikeReference) {
  // Fall off the end of a program with no halt: both backends must throw.
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  program.entry = 0;
  FunctionalSimulator reference(program);
  PackedFunctionalSimulator packed(program);
  EXPECT_TRUE(reference.step());
  EXPECT_TRUE(packed.step());
  EXPECT_THROW(static_cast<void>(reference.step()), SimError);
  EXPECT_THROW(static_cast<void>(packed.step()), SimError);
}

TEST(PackedSim, MalformedImmediateThrowsAtDecodeTime) {
  // ADDI's imm3 range is [-13, 13]; 500 is unencodable.  The decoder must
  // reject it at image-construction time — previously the reference path
  // only threw when the instruction first *executed*.
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 500});
  program.code.push_back(isa::Instruction::halt());
  program.entry = 0;
  EXPECT_THROW(static_cast<void>(decode(program)), SimError);
  // Same for the other pre-encoded immediate forms.
  for (isa::Opcode op : {isa::Opcode::kAndi, isa::Opcode::kLui, isa::Opcode::kLi}) {
    isa::Program p;
    p.code.push_back(isa::Instruction{op, 1, 0, ternary::kTritZ, 10'000});
    p.entry = 0;
    EXPECT_THROW(static_cast<void>(decode(p)), SimError) << isa::mnemonic(op);
  }
}

TEST(PackedSim, InspectionAccessorsDecodeOnDemand) {
  PackedFunctionalSimulator sim(isa::assemble("LIMM T1, -4567\nHALT\n"));
  static_cast<void>(sim.run());
  EXPECT_EQ(sim.reg_int(1), -4567);
  EXPECT_EQ(sim.reg(1), ternary::Word9::from_int(-4567));
  EXPECT_EQ(sim.reg_packed(1), ternary::BctWord9::encode(sim.reg(1)));
}

}  // namespace
}  // namespace art9::sim
