// Regression: ART-9 address handling must stay defined and loud at the
// extremes — the same wraparound class the rv32 RAM checks were hardened
// against.  .t9 images carry arbitrary int64 addresses, so `row_of` must not
// overflow while folding them and program load must reject out-of-range
// entries/data words with a SimError naming the faulting address (mirrors
// tests/rv32/rv32_sim_test.cpp's OutOfRangeAccessRaisesWithFaultingAddress).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "sim/decoded_image.hpp"
#include "sim/functional_sim.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace art9::sim {
namespace {

constexpr int64_t kMax = ternary::Word9::kMaxValue;  // 9841

TEST(MemoryBounds, RowOfBijectionAnchors) {
  EXPECT_EQ(TernaryMemory::row_of(-kMax), 0u);
  EXPECT_EQ(TernaryMemory::row_of(0), static_cast<std::size_t>(kMax));
  EXPECT_EQ(TernaryMemory::row_of(kMax), static_cast<std::size_t>(TernaryMemory::kRows - 1));
}

TEST(MemoryBounds, RowOfIsPeriodicAtTheExtremes) {
  // The previous `(address + 9841) % 19683` biased before reducing, which is
  // signed overflow (UB) for addresses near INT64_MAX.  Reduction must agree
  // with the small-address bijection for every congruent address.
  const int64_t max = std::numeric_limits<int64_t>::max();
  const int64_t min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(TernaryMemory::row_of(max), TernaryMemory::row_of(max % TernaryMemory::kRows));
  EXPECT_EQ(TernaryMemory::row_of(min), TernaryMemory::row_of(min % TernaryMemory::kRows));
  for (int64_t a : {int64_t{0}, kMax, -kMax, int64_t{12345}}) {
    EXPECT_EQ(TernaryMemory::row_of(a - TernaryMemory::kRows), TernaryMemory::row_of(a)) << a;
    EXPECT_EQ(TernaryMemory::row_of(a + TernaryMemory::kRows), TernaryMemory::row_of(a)) << a;
  }
}

TEST(MemoryBounds, ExtremeAddressRoundTripsThroughBothMemories) {
  const auto w = ternary::Word9::from_int(-777);
  TernaryMemory tdm;
  tdm.poke(std::numeric_limits<int64_t>::max(), w);
  EXPECT_EQ(tdm.peek(std::numeric_limits<int64_t>::max()).to_int(), -777);
  PackedMemory packed;
  packed.poke(std::numeric_limits<int64_t>::min(), ternary::BctWord9::encode(w));
  EXPECT_EQ(packed.unpack().peek(std::numeric_limits<int64_t>::min()).to_int(), -777);
}

TEST(MemoryBounds, LoadRejectsOutOfRangeEntryNamingAddress) {
  isa::Program program;
  program.code.push_back(isa::Instruction::halt());
  program.entry = kMax + 1;
  try {
    LazyFunctionalSimulator sim(program);
    FAIL() << "out-of-range entry must not load";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("9842"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("entry"), std::string::npos) << e.what();
  }
  // The pre-decoded front end rejects identically (it folds entry + i too).
  program.entry = std::numeric_limits<int64_t>::max();
  EXPECT_THROW(static_cast<void>(DecodedImage(program)), SimError);
}

TEST(MemoryBounds, LoadRejectsOutOfRangeDataWordNamingAddress) {
  isa::Program program;
  program.code.push_back(isa::Instruction::halt());
  program.entry = 0;
  program.data.push_back(isa::DataWord{-kMax - 2, ternary::Word9::from_int(1)});
  try {
    FunctionalSimulator sim(program);
    FAIL() << "out-of-range data word must not load";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("-9843"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("data-word"), std::string::npos) << e.what();
  }
}

TEST(MemoryBounds, InRangeProgramStillLoadsEverywhere) {
  isa::Program program;
  program.code.push_back(isa::Instruction::halt());
  program.entry = kMax;  // last valid row
  program.data.push_back(isa::DataWord{-kMax, ternary::Word9::from_int(5)});
  FunctionalSimulator sim(program);
  EXPECT_EQ(sim.state().tdm.peek(-kMax).to_int(), 5);
  EXPECT_EQ(sim.state().pc, kMax);
}

}  // namespace
}  // namespace art9::sim
