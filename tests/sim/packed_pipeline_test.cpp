// Packed-pipeline parity suite: the plane-packed cycle-accurate pipeline
// must be *bit-identical* to the reference PipelineSimulator — cycle
// counts, every stall/squash/prediction counter, architectural state
// (registers, TDM contents *and* access counters, PC), retired-instruction
// observer streams and rendered CycleTrace output — across every
// PipelineConfig ablation combination, on the translated paper benchmarks
// and an every-opcode assembly corpus.
//
// The two simulators share the control-logic template by construction
// (pipeline_model.hpp); what this suite actually locks is the datapath:
// any packed ALU/forwarding/condition/address divergence changes branch
// outcomes, stall placement or latched values and shows up here.
#include "sim/packed_pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/pipeline.hpp"
#include "sim/trace.hpp"
#include "xlat/framework.hpp"

namespace art9::sim {
namespace {

isa::Program translated(const core::BenchmarkSources& bench) {
  xlat::SoftwareFramework framework;
  return framework.translate(rv32::assemble_rv32(bench.rv32)).program;
}

/// Every combination of the five PipelineConfig switches (2^5 = 32),
/// including the static_prediction-without-branch_in_id corner the config
/// documents as ignored.
std::vector<PipelineConfig> all_config_combinations() {
  std::vector<PipelineConfig> configs;
  for (unsigned bits = 0; bits < 32; ++bits) {
    PipelineConfig c;
    c.ex_forwarding = (bits & 1u) != 0;
    c.id_forwarding = (bits & 2u) != 0;
    c.regfile_write_through = (bits & 4u) != 0;
    c.branch_in_id = (bits & 8u) != 0;
    c.static_prediction = (bits & 16u) != 0;
    configs.push_back(c);
  }
  return configs;
}

std::string config_name(const PipelineConfig& c) {
  std::string name;
  name += c.ex_forwarding ? "exfwd," : "noexfwd,";
  name += c.id_forwarding ? "idfwd," : "noidfwd,";
  name += c.regfile_write_through ? "wt," : "nowt,";
  name += c.branch_in_id ? "brid," : "brex,";
  name += c.static_prediction ? "pred" : "nopred";
  return name;
}

/// Small programs that collectively execute all 24 opcodes: ALU/logic
/// traffic, every branch polarity, register and immediate shifts, LUI/LI
/// field inserts, memory traffic and JAL/JALR linkage.
const std::vector<std::string>& opcode_corpus() {
  static const std::vector<std::string> kPrograms = {
      R"(
        LIMM T1, 1234
        LIMM T2, -77
        ADD  T1, T2
        SUB  T2, T1
        AND  T1, T2
        OR   T2, T1
        XOR  T1, T2
        STI  T3, T1
        NTI  T4, T1
        PTI  T5, T2
        MV   T6, T5
        COMP T6, T4
        ANDI T1, 13
        ADDI T1, -13
        LUI  T7, -40
        LI   T7, 121
        HALT
      )",
      R"(
        LIMM T1, 9841
        LIMM T2, 5
        SR   T1, T2
        SL   T1, T2
        SRI  T1, 8
        SLI  T1, 3
        HALT
      )",
      R"(
        LIMM T1, 1
        COMP T1, T0
        BEQ  T1, +, fwd
        LIMM T7, 111
      fwd:
        BNE  T1, -, fwd2
        LIMM T7, 222
      fwd2:
        BEQ  T1, 0, never
        ADDI T6, 4
      never:
        LIMM T5, 0
        JAL  T8, sub
        ADDI T5, 2
        HALT
      sub:
        ADDI T5, 5
        JALR T0, T8, 0
      )",
      R"(
        LIMM T1, -9000
        LIMM T2, 42
        STORE T2, -3(T1)
        LOAD  T3, -3(T1)
        ADD   T3, T3
        STORE T3, 13(T1)
        LOAD  T4, 13(T1)
        HALT
      )",
  };
  return kPrograms;
}

void expect_bit_identical(const std::shared_ptr<const DecodedImage>& image,
                          const PipelineConfig& config, uint64_t max_cycles = 50'000'000) {
  SCOPED_TRACE(config_name(config));
  PipelineSimulator reference(image, config);
  PackedPipelineSimulator packed(image, config);
  const SimStats ref_stats = reference.run(max_cycles);
  const SimStats packed_stats = packed.run(max_cycles);
  // The whole SimStats struct: cycles, instructions, every stall/flush/
  // prediction counter and the halt reason.
  EXPECT_EQ(packed_stats, ref_stats);
  // The whole ArchState: registers, TDM contents *and* access counters, PC.
  EXPECT_EQ(packed.state(), reference.state());
}

// --- the acceptance matrix: 4 translated benchmarks x 32 configs -------------

class PackedPipelineAblationParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackedPipelineAblationParity, TranslatedBenchmarkBitIdenticalOnAllConfigs) {
  const core::BenchmarkSources& bench = *core::all_benchmarks()[GetParam()];
  const std::shared_ptr<const DecodedImage> image = decode(translated(bench));
  for (const PipelineConfig& config : all_config_combinations()) {
    expect_bit_identical(image, config);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PackedPipelineAblationParity,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name = core::all_benchmarks()[info.param]->name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- every-opcode corpus x 32 configs ----------------------------------------

TEST(PackedPipeline, OpcodeCorpusBitIdenticalOnAllConfigs) {
  for (const std::string& source : opcode_corpus()) {
    const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(source));
    for (const PipelineConfig& config : all_config_combinations()) {
      expect_bit_identical(image, config);
    }
  }
}

// --- budget exhaustion: identical mid-flight cut -----------------------------

TEST(PackedPipeline, BudgetExhaustionBitIdenticalOnAllConfigs) {
  const std::shared_ptr<const DecodedImage> image =
      decode(isa::assemble("loop:\n  ADDI T1, 1\n  COMP T2, T1\n  JAL T0, loop\n"));
  for (const PipelineConfig& config : all_config_combinations()) {
    expect_bit_identical(image, config, 73);  // budget cuts mid-iteration
  }
}

// --- retired-instruction observer stream parity ------------------------------

TEST(PackedPipeline, RetireStreamBitIdenticalOnAllConfigs) {
  struct Retire {
    std::string inst;
    int64_t pc;
    uint64_t index;
    bool operator==(const Retire&) const = default;
  };
  const std::shared_ptr<const DecodedImage> image = decode(translated(*core::all_benchmarks()[0]));
  for (const PipelineConfig& config : all_config_combinations()) {
    SCOPED_TRACE(config_name(config));
    std::vector<Retire> ref_stream;
    std::vector<Retire> packed_stream;
    PipelineSimulator reference(image, config);
    reference.set_retire_observer([&](const isa::Instruction& inst, int64_t pc, uint64_t index) {
      ref_stream.push_back({isa::to_string(inst), pc, index});
    });
    PackedPipelineSimulator packed(image, config);
    packed.set_retire_observer([&](const isa::Instruction& inst, int64_t pc, uint64_t index) {
      packed_stream.push_back({isa::to_string(inst), pc, index});
    });
    static_cast<void>(reference.run());
    static_cast<void>(packed.run());
    ASSERT_FALSE(ref_stream.empty());
    EXPECT_EQ(packed_stream, ref_stream);
  }
}

// --- rendered CycleTrace parity ----------------------------------------------

TEST(PackedPipeline, RenderedTraceBitIdenticalOnAllConfigs) {
  // The trace-golden program: load-use stall, taken backward branch,
  // straight-line ALU traffic and the halt — every trace event.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(R"(
      LIMM T1, 60
      LIMM T2, 2
      STORE T2, 0(T1)
  loop:
      LOAD  T3, 0(T1)
      ADD   T4, T3
      ADDI  T2, -1
      MV    T5, T2
      COMP  T5, T0
      BNE   T5, 0, loop
      HALT
  )"));
  for (const PipelineConfig& config : all_config_combinations()) {
    SCOPED_TRACE(config_name(config));
    std::vector<std::string> ref_lines;
    std::vector<std::string> packed_lines;
    PipelineSimulator reference(image, config);
    reference.set_tracer([&](const CycleTrace& t) { ref_lines.push_back(render_trace(t)); });
    PackedPipelineSimulator packed(image, config);
    packed.set_tracer([&](const CycleTrace& t) { packed_lines.push_back(render_trace(t)); });
    static_cast<void>(reference.run());
    static_cast<void>(packed.run());
    ASSERT_FALSE(ref_lines.empty());
    EXPECT_EQ(packed_lines, ref_lines);
  }
}

// --- uninitialised-fetch trap parity -----------------------------------------

TEST(PackedPipeline, UninitialisedFetchTrapsLikeReference) {
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  program.entry = 0;
  const std::shared_ptr<const DecodedImage> image = decode(program);
  PipelineSimulator reference(image);
  PackedPipelineSimulator packed(image);
  EXPECT_THROW(static_cast<void>(reference.run()), SimError);
  EXPECT_THROW(static_cast<void>(packed.run()), SimError);
}

}  // namespace
}  // namespace art9::sim
