// Engine conformance suite: one parameterized fixture run over every
// EngineKind, asserting the unified contract of sim::Engine on the four
// translated paper benchmarks plus an every-opcode assembly corpus.
//
// Contract (see engine.hpp):
//  * every functional kind (lazy, functional, packed) is bit-identical to
//    the golden FunctionalSimulator in ArchState (registers, TDM contents
//    *and* access counters, PC) and SimStats;
//  * the pipeline kind matches ArchState, retired-instruction count and
//    halt reason (its cycle accounting legitimately differs);
//  * budget exhaustion reports HaltReason::kMaxCycles on every kind;
//  * the retired-instruction observer sees the same (inst, pc, index)
//    stream on every kind, and step() matches run().
//
// This replaces the per-backend copies that used to live in
// packed_sim_test.cpp and batch_runner_test.cpp.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/functional_sim.hpp"
#include "xlat/framework.hpp"

namespace art9::sim {
namespace {

isa::Program translated(const core::BenchmarkSources& bench) {
  xlat::SoftwareFramework framework;
  return framework.translate(rv32::assemble_rv32(bench.rv32)).program;
}

/// Small programs that collectively execute all 24 opcodes, both branch
/// polarities, register and immediate shifts, LUI/LI field insertion,
/// memory traffic, JAL/JALR linkage and the never-halts budget path.
const std::array<std::string, 7>& opcode_corpus() {
  static const std::array<std::string, 7> kPrograms = {
      // Arithmetic + logic + inverters.
      R"(
        LIMM T1, 1234
        LIMM T2, -77
        ADD  T1, T2
        SUB  T2, T1
        AND  T1, T2
        OR   T2, T1
        XOR  T1, T2
        STI  T3, T1
        NTI  T4, T1
        PTI  T5, T2
        MV   T6, T5
        COMP T6, T4
        HALT
      )",
      // Immediate forms incl. LUI/LI partial writes and ANDI.
      R"(
        LIMM T1, -9841
        ANDI T1, 13
        ADDI T1, -13
        LUI  T2, -40
        LI   T2, 121
        LUI  T3, 40
        LI   T3, -121
        HALT
      )",
      // Register and immediate shifts, incl. amounts from a register.
      R"(
        LIMM T1, 9841
        LIMM T2, 5
        SR   T1, T2
        SL   T1, T2
        SRI  T1, 8
        SLI  T1, 3
        HALT
      )",
      // Branch polarities: all three condition trits, taken and fallthrough.
      R"(
        LIMM T1, 1
        COMP T1, T0
        BEQ  T1, +, fwd
        LIMM T7, 111
      fwd:
        BNE  T1, -, fwd2
        LIMM T7, 222
      fwd2:
        BEQ  T1, 0, never
        ADDI T6, 4
      never:
        HALT
      )",
      // JAL / JALR call-and-return with link registers.
      R"(
        LIMM T5, 0
        JAL  T8, sub
        ADDI T5, 2
        HALT
      sub:
        ADDI T5, 5
        JALR T0, T8, 0
      )",
      // Memory traffic: negative addresses, overlapping rows.
      R"(
        LIMM T1, -9000
        LIMM T2, 42
        STORE T2, -3(T1)
        LOAD  T3, -3(T1)
        STORE T3, 13(T1)
        LOAD  T4, 13(T1)
        HALT
      )",
      // Never halts: the budget path must report kMaxCycles identically.
      "loop:\n  ADDI T1, 1\n  JAL T0, loop\n",
  };
  return kPrograms;
}

constexpr uint64_t kBudget = 100'000'000;

[[nodiscard]] bool is_functional(EngineKind kind) { return !is_cycle_accurate(kind); }

class EngineConformance : public ::testing::TestWithParam<EngineKind> {
 protected:
  /// Golden reference: a standalone FunctionalSimulator run.
  static RunResult reference(const std::shared_ptr<const DecodedImage>& image, uint64_t budget) {
    FunctionalSimulator sim(image);
    SimStats stats = sim.run(budget);
    return RunResult{sim.state(), stats, stats.halt};
  }

  void expect_conforms(const isa::Program& program, uint64_t budget = kBudget) {
    const std::shared_ptr<const DecodedImage> image = decode(program);
    const RunResult golden = reference(image, budget);
    std::unique_ptr<Engine> engine = make_engine(GetParam(), image);
    ASSERT_EQ(engine->kind(), GetParam());
    const RunResult got = engine->run({budget});
    EXPECT_EQ(got.halt, got.stats.halt);
    if (is_functional(GetParam())) {
      EXPECT_EQ(got.stats, golden.stats);
      EXPECT_EQ(got.state, golden.state);
      EXPECT_EQ(got.halt, golden.halt);
    } else if (golden.halt == HaltReason::kHalted) {
      // The pipeline retires the same instruction stream on its own clock;
      // final architectural state and retired count must still match.
      EXPECT_EQ(got.halt, HaltReason::kHalted);
      EXPECT_EQ(got.stats.instructions, golden.stats.instructions);
      EXPECT_EQ(got.state.trf, golden.state.trf);
      // No PC assertion: the pipeline's architectural PC rests on the next
      // fetch address when HALT retires, one past the functional models'
      // convention of resting *on* the halt instruction.  TDM contents
      // must match; access counters differ (the pipeline's wrong-path and
      // per-stage accesses are part of its model).
      for (int64_t a = -ternary::Word9::kMaxValue; a <= ternary::Word9::kMaxValue; ++a) {
        if (got.state.tdm.peek(a) != golden.state.tdm.peek(a)) {
          FAIL() << "TDM mismatch at address " << a;
        }
      }
    } else {
      // Budget-exhausted on the pipeline (its budget is cycles, the
      // golden model's is instructions): the cycle allowance must be
      // consumed exactly, and the register file must equal the golden
      // model replayed to the same retire count — TRF writes land at
      // retire, so the instruction-accurate model at N retired
      // instructions is the oracle.  (TDM may differ by in-flight
      // stores, which execute in MEM before their instruction retires.)
      EXPECT_EQ(got.halt, HaltReason::kMaxCycles);
      EXPECT_EQ(got.stats.cycles, budget);
      EXPECT_LE(got.stats.instructions, budget);
      std::unique_ptr<Engine> replay = make_engine(EngineKind::kFunctional, image);
      const RunResult r = replay->run({got.stats.instructions});
      EXPECT_EQ(got.state.trf, r.state.trf);
    }
  }
};

// --- the acceptance corpus: all four paper benchmarks ------------------------

TEST_P(EngineConformance, BitIdenticalOnBenchmarkCorpus) {
  for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
    SCOPED_TRACE(bench->name);
    expect_conforms(translated(*bench));
  }
}

// --- every-opcode assembly corpus --------------------------------------------

TEST_P(EngineConformance, BitIdenticalOnOpcodeCorpus) {
  for (const std::string& source : opcode_corpus()) {
    expect_conforms(isa::assemble(source), 2'000);
  }
}

// --- budget exhaustion: HaltReason::kMaxCycles on every kind -----------------

TEST_P(EngineConformance, TinyBudgetOnInfiniteLoopReportsMaxCycles) {
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  std::unique_ptr<Engine> engine = make_engine(GetParam(), loop);
  const RunResult r = engine->run({50});
  EXPECT_EQ(r.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(r.stats.halt, HaltReason::kMaxCycles);
  if (is_functional(GetParam())) {
    EXPECT_EQ(r.stats.instructions, 50u);  // budget is an instruction count
  } else {
    EXPECT_EQ(r.stats.cycles, 50u);  // budget is a cycle count
  }
}

TEST_P(EngineConformance, RepeatedRunsReportPerCallStats) {
  // Every kind reports per-call stats: a second run with the same budget
  // accounts only its own steps, never the lifetime total.
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  std::unique_ptr<Engine> engine = make_engine(GetParam(), loop);
  const RunResult first = engine->run({50});
  const RunResult second = engine->run({50});
  EXPECT_EQ(first.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(second.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(first.stats.cycles, 50u);
  EXPECT_EQ(second.stats.cycles, 50u);
  // The architectural state, by contrast, does advance across runs.
  EXPECT_NE(first.state.trf.read(1), second.state.trf.read(1));
}

TEST_P(EngineConformance, PipelineConfigBudgetCapsEachRun) {
  // EngineOptions.pipeline.max_cycles is honoured behind the facade as a
  // per-run cap (the tighter of it and RunOptions.max_steps wins); the
  // functional kinds ignore it.
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  EngineOptions options;
  options.pipeline.max_cycles = 40;
  std::unique_ptr<Engine> engine = make_engine(GetParam(), decode(loop), options);
  const RunResult r = engine->run({100});
  EXPECT_EQ(r.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(r.stats.cycles, is_cycle_accurate(GetParam()) ? 40u : 100u);
}

TEST_P(EngineConformance, HaltingProgramReportsHalted) {
  std::unique_ptr<Engine> engine = make_engine(GetParam(), isa::assemble("LIMM T1, 7\nHALT\n"));
  const RunResult r = engine->run({});
  EXPECT_EQ(r.halt, HaltReason::kHalted);
  EXPECT_EQ(r.state.trf.read(1).to_int(), 7);
}

// --- run_stats() is run() without the snapshot -------------------------------

TEST_P(EngineConformance, RunStatsMatchesRun) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(opcode_corpus()[0]));
  std::unique_ptr<Engine> stats_only = make_engine(GetParam(), image);
  std::unique_ptr<Engine> full = make_engine(GetParam(), image);
  const SimStats stats = stats_only->run_stats({});
  const RunResult r = full->run({});
  EXPECT_EQ(stats, r.stats);
  EXPECT_EQ(stats_only->state(), r.state);
}

// --- step() matches run() ----------------------------------------------------

TEST_P(EngineConformance, StepLoopMatchesRun) {
  const isa::Program program = isa::assemble(opcode_corpus()[0]);
  const std::shared_ptr<const DecodedImage> image = decode(program);
  std::unique_ptr<Engine> stepped = make_engine(GetParam(), image);
  std::unique_ptr<Engine> ran = make_engine(GetParam(), image);
  uint64_t guard = 0;
  while (stepped->step() && ++guard < 1'000'000) {
  }
  const RunResult r = ran->run({});
  EXPECT_EQ(stepped->state(), r.state);
}

// --- the retired-instruction observer ----------------------------------------

TEST_P(EngineConformance, ObserverSeesEveryRetiredInstruction) {
  const isa::Program program = isa::assemble(opcode_corpus()[4]);  // JAL/JALR linkage
  std::unique_ptr<Engine> engine = make_engine(GetParam(), program);
  std::vector<Retired> stream;
  engine->set_observer([&](const Retired& r) { stream.push_back(r); });
  const RunResult r = engine->run({});
  ASSERT_EQ(stream.size(), r.stats.instructions);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].index, i);
    // The stream is the executed path: each pc must hold the instruction
    // the observer reported.
    EXPECT_EQ(isa::to_string(engine->image().fetch(stream[i].pc).inst),
              isa::to_string(stream[i].inst));
  }
  // First retired instruction is the entry instruction.
  EXPECT_EQ(stream.front().pc, program.entry);

  // The stream is identical to the golden model's (same corpus, every
  // kind): lock against the functional engine's stream.
  std::unique_ptr<Engine> golden = make_engine(EngineKind::kFunctional, program);
  std::vector<Retired> golden_stream;
  golden->set_observer([&](const Retired& g) { golden_stream.push_back(g); });
  static_cast<void>(golden->run({}));
  ASSERT_EQ(stream.size(), golden_stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].pc, golden_stream[i].pc) << "index " << i;
    EXPECT_EQ(isa::to_string(stream[i].inst), isa::to_string(golden_stream[i].inst));
  }
}

TEST_P(EngineConformance, ObserverInstalledMidRunNumbersFromZero) {
  // The stream is numbered from each installation, on every kind — even
  // when the engine has already retired instructions.
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  std::unique_ptr<Engine> engine = make_engine(GetParam(), loop);
  static_cast<void>(engine->run({10}));  // retire a few first
  std::vector<Retired> stream;
  engine->set_observer([&](const Retired& r) { stream.push_back(r); });
  static_cast<void>(engine->run({10}));
  ASSERT_FALSE(stream.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) EXPECT_EQ(stream[i].index, i);
}

TEST_P(EngineConformance, ObserverRemovalRestoresFastPath) {
  std::unique_ptr<Engine> engine = make_engine(GetParam(), isa::assemble("LIMM T1, 3\nHALT\n"));
  uint64_t fires = 0;
  engine->set_observer([&](const Retired&) { ++fires; });
  engine->set_observer({});
  const RunResult r = engine->run({});
  EXPECT_EQ(fires, 0u);
  EXPECT_EQ(r.halt, HaltReason::kHalted);
}

// --- uninitialised-fetch trap parity ----------------------------------------

TEST_P(EngineConformance, UninitialisedFetchTraps) {
  // Fall off the end of a program with no halt: every kind must throw.
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  program.entry = 0;
  std::unique_ptr<Engine> engine = make_engine(GetParam(), program);
  EXPECT_THROW(static_cast<void>(engine->run({})), SimError);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EngineConformance, ::testing::ValuesIn(all_engine_kinds()),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(engine_kind_name(info.param));
                         });

// --- facade plumbing ---------------------------------------------------------

TEST(Engine, KindNamesRoundTrip) {
  for (EngineKind kind : all_engine_kinds()) {
    EXPECT_EQ(parse_engine_kind(engine_kind_name(kind)), kind);
  }
  EXPECT_EQ(parse_engine_kind("no-such-engine"), std::nullopt);
}

TEST(Engine, NullImageThrows) {
  EXPECT_THROW(static_cast<void>(make_engine(EngineKind::kPacked, nullptr)),
               std::invalid_argument);
}

TEST(Engine, SharedImageIsExposed) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble("HALT\n"));
  for (EngineKind kind : all_engine_kinds()) {
    std::unique_ptr<Engine> engine = make_engine(kind, image);
    EXPECT_EQ(&engine->image(), image.get()) << engine_kind_name(kind);
  }
}

}  // namespace
}  // namespace art9::sim
