// Engine conformance suite: parameterized fixtures run over every
// EngineKind of both ISAs, asserting the unified contract of sim::Engine
// on the four paper benchmarks plus every-opcode assembly corpora.
//
// Contract (see engine.hpp):
//  * every ART-9 functional kind (lazy, functional, packed) is
//    bit-identical to the golden FunctionalSimulator in ArchState
//    (registers, TDM contents *and* access counters, PC) and SimStats;
//  * the pipeline kinds match ArchState, retired-instruction count and
//    halt reason (their cycle accounting legitimately differs);
//  * every rv32 kind (pre-decoded reference, PackedWord<21> datapath) is
//    bit-identical to the seed LazyRv32Simulator in Rv32ArchState
//    (x-registers, every RAM byte, PC) and run statistics;
//  * budget exhaustion reports HaltReason::kMaxCycles on every kind;
//  * the retired-instruction observer sees the same (inst, pc, index)
//    stream on every kind of one ISA, and step() matches run().
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/functional_sim.hpp"
#include "xlat/framework.hpp"

namespace art9::sim {
namespace {

isa::Program translated(const core::BenchmarkSources& bench) {
  xlat::SoftwareFramework framework;
  return framework.translate(rv32::assemble_rv32(bench.rv32)).program;
}

/// Small programs that collectively execute all 24 opcodes, both branch
/// polarities, register and immediate shifts, LUI/LI field insertion,
/// memory traffic, JAL/JALR linkage and the never-halts budget path.
const std::array<std::string, 7>& opcode_corpus() {
  static const std::array<std::string, 7> kPrograms = {
      // Arithmetic + logic + inverters.
      R"(
        LIMM T1, 1234
        LIMM T2, -77
        ADD  T1, T2
        SUB  T2, T1
        AND  T1, T2
        OR   T2, T1
        XOR  T1, T2
        STI  T3, T1
        NTI  T4, T1
        PTI  T5, T2
        MV   T6, T5
        COMP T6, T4
        HALT
      )",
      // Immediate forms incl. LUI/LI partial writes and ANDI.
      R"(
        LIMM T1, -9841
        ANDI T1, 13
        ADDI T1, -13
        LUI  T2, -40
        LI   T2, 121
        LUI  T3, 40
        LI   T3, -121
        HALT
      )",
      // Register and immediate shifts, incl. amounts from a register.
      R"(
        LIMM T1, 9841
        LIMM T2, 5
        SR   T1, T2
        SL   T1, T2
        SRI  T1, 8
        SLI  T1, 3
        HALT
      )",
      // Branch polarities: all three condition trits, taken and fallthrough.
      R"(
        LIMM T1, 1
        COMP T1, T0
        BEQ  T1, +, fwd
        LIMM T7, 111
      fwd:
        BNE  T1, -, fwd2
        LIMM T7, 222
      fwd2:
        BEQ  T1, 0, never
        ADDI T6, 4
      never:
        HALT
      )",
      // JAL / JALR call-and-return with link registers.
      R"(
        LIMM T5, 0
        JAL  T8, sub
        ADDI T5, 2
        HALT
      sub:
        ADDI T5, 5
        JALR T0, T8, 0
      )",
      // Memory traffic: negative addresses, overlapping rows.
      R"(
        LIMM T1, -9000
        LIMM T2, 42
        STORE T2, -3(T1)
        LOAD  T3, -3(T1)
        STORE T3, 13(T1)
        LOAD  T4, 13(T1)
        HALT
      )",
      // Never halts: the budget path must report kMaxCycles identically.
      "loop:\n  ADDI T1, 1\n  JAL T0, loop\n",
  };
  return kPrograms;
}

/// RV32 mirror of opcode_corpus(): collectively executes all 48 RV32I+M
/// instructions — both branch polarities per condition, sub-word memory
/// traffic with sign extension, JAL/JALR linkage, LUI/AUIPC, FENCE, the
/// M-extension corner cases, both halt conventions, and the never-halts
/// budget path.
const std::array<std::string, 6>& rv32_opcode_corpus() {
  static const std::array<std::string, 6> kPrograms = {
      // ALU reg-reg + reg-imm, LUI/AUIPC.
      R"(
        li    a0, 100
        li    a1, -30
        add   a2, a0, a1
        sub   a3, a0, a1
        and   a4, a0, a1
        or    a5, a0, a1
        xor   a6, a0, a1
        sll   t0, a0, a1
        srl   t1, a0, a1
        sra   t2, a1, a0
        slt   t3, a1, a0
        sltu  t4, a1, a0
        addi  s0, a0, 11
        slti  s1, a1, 0
        sltiu s2, a0, 200
        xori  s3, a0, 15
        ori   s4, a0, 257
        andi  s5, a0, 60
        slli  s6, a0, 3
        srli  s7, a1, 2
        srai  s8, a1, 2
        lui   s9, 74565
        auipc s10, 1
        ebreak
      )",
      // M extension incl. the division edge cases.
      R"(
        li     a0, -7
        li     a1, 3
        mul    a2, a0, a1
        mulh   a3, a0, a1
        mulhsu a4, a0, a1
        mulhu  a5, a0, a1
        div    a6, a0, a1
        divu   t0, a0, a1
        rem    t1, a0, a1
        remu   t2, a0, a1
        li     t3, 0
        div    t4, a0, t3
        rem    t5, a0, t3
        li     s0, -2147483648
        li     s1, -1
        div    s2, s0, s1
        rem    s3, s0, s1
        ebreak
      )",
      // Branch polarities: every condition, taken and fallthrough.
      R"(
        li   a0, 1
        li   a1, 2
        beq  a0, a0, b1
        addi s0, zero, 111
      b1:
        bne  a0, a1, b2
        addi s0, zero, 222
      b2:
        blt  a0, a1, b3
        addi s1, zero, 1
      b3:
        bge  a1, a0, b4
        addi s1, zero, 2
      b4:
        bltu a0, a1, b5
        addi s2, zero, 3
      b5:
        bgeu a1, a0, b6
        addi s2, zero, 4
      b6:
        beq  a0, a1, never
        addi s3, zero, 5
      never:
        ebreak
      )",
      // Memory traffic: sub-word loads/stores, sign extension, ecall halt.
      R"(
      .data
      .org 64
      vals: .word 0x80FF7F01, -123456
      .text
        li   a0, 64
        lw   a1, 0(a0)
        lb   a2, 3(a0)
        lbu  a3, 3(a0)
        lh   a4, 2(a0)
        lhu  a5, 2(a0)
        sb   a1, 80(a0)
        sh   a1, 84(a0)
        sw   a1, 88(a0)
        lw   t0, 4(a0)
        sb   t0, 81(a0)
        lw   s0, 80(a0)
        lw   s1, 84(a0)
        lw   s2, 88(a0)
        ecall
      )",
      // JAL/JALR call-and-return + FENCE.
      R"(
        li   a0, 5
        call double_it
        mv   a1, a0
        fence
        ebreak
      double_it:
        add  a0, a0, a0
        ret
      )",
      // Never halts: the budget path must report kMaxCycles identically.
      "loop:\n  addi t0, t0, 1\n  j loop\n",
  };
  return kPrograms;
}

constexpr uint64_t kBudget = 100'000'000;

[[nodiscard]] bool is_functional(EngineKind kind) { return !is_cycle_accurate(kind); }

// ===========================================================================
// ART-9 kinds.
// ===========================================================================

class EngineConformance : public ::testing::TestWithParam<EngineKind> {
 protected:
  /// Golden reference: a standalone FunctionalSimulator run.
  static RunResult reference(const std::shared_ptr<const DecodedImage>& image, uint64_t budget) {
    FunctionalSimulator sim(image);
    SimStats stats = sim.run(budget);
    return RunResult{sim.state(), stats, stats.halt};
  }

  void expect_conforms(const isa::Program& program, uint64_t budget = kBudget) {
    const std::shared_ptr<const DecodedImage> image = decode(program);
    const RunResult golden = reference(image, budget);
    std::unique_ptr<Engine> engine = make_engine(GetParam(), image);
    ASSERT_EQ(engine->kind(), GetParam());
    const RunResult got = engine->run({budget});
    EXPECT_EQ(got.halt, got.stats.halt);
    if (is_functional(GetParam())) {
      EXPECT_EQ(got.stats, golden.stats);
      EXPECT_EQ(got.state, golden.state);
      EXPECT_EQ(got.halt, golden.halt);
    } else if (golden.halt == HaltReason::kHalted) {
      // The pipeline retires the same instruction stream on its own clock;
      // final architectural state and retired count must still match.
      EXPECT_EQ(got.halt, HaltReason::kHalted);
      EXPECT_EQ(got.stats.instructions, golden.stats.instructions);
      EXPECT_EQ(got.state.art9().trf, golden.state.art9().trf);
      // No PC assertion: the pipeline's architectural PC rests on the next
      // fetch address when HALT retires, one past the functional models'
      // convention of resting *on* the halt instruction.  TDM contents
      // must match; access counters differ (the pipeline's wrong-path and
      // per-stage accesses are part of its model).
      for (int64_t a = -ternary::Word9::kMaxValue; a <= ternary::Word9::kMaxValue; ++a) {
        if (got.state.art9().tdm.peek(a) != golden.state.art9().tdm.peek(a)) {
          FAIL() << "TDM mismatch at address " << a;
        }
      }
    } else {
      // Budget-exhausted on the pipeline (its budget is cycles, the
      // golden model's is instructions): the cycle allowance must be
      // consumed exactly, and the register file must equal the golden
      // model replayed to the same retire count — TRF writes land at
      // retire, so the instruction-accurate model at N retired
      // instructions is the oracle.  (TDM may differ by in-flight
      // stores, which execute in MEM before their instruction retires.)
      EXPECT_EQ(got.halt, HaltReason::kMaxCycles);
      EXPECT_EQ(got.stats.cycles, budget);
      EXPECT_LE(got.stats.instructions, budget);
      std::unique_ptr<Engine> replay = make_engine(EngineKind::kFunctional, image);
      const RunResult r = replay->run({got.stats.instructions});
      EXPECT_EQ(got.state.art9().trf, r.state.art9().trf);
    }
  }
};

// --- the acceptance corpus: all four paper benchmarks ------------------------

TEST_P(EngineConformance, BitIdenticalOnBenchmarkCorpus) {
  for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
    SCOPED_TRACE(bench->name);
    expect_conforms(translated(*bench));
  }
}

// --- every-opcode assembly corpus --------------------------------------------

TEST_P(EngineConformance, BitIdenticalOnOpcodeCorpus) {
  for (const std::string& source : opcode_corpus()) {
    expect_conforms(isa::assemble(source), 2'000);
  }
}

// --- budget exhaustion: HaltReason::kMaxCycles on every kind -----------------

TEST_P(EngineConformance, TinyBudgetOnInfiniteLoopReportsMaxCycles) {
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  std::unique_ptr<Engine> engine = make_engine(GetParam(), loop);
  const RunResult r = engine->run({50});
  EXPECT_EQ(r.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(r.stats.halt, HaltReason::kMaxCycles);
  if (is_functional(GetParam())) {
    EXPECT_EQ(r.stats.instructions, 50u);  // budget is an instruction count
  } else {
    EXPECT_EQ(r.stats.cycles, 50u);  // budget is a cycle count
  }
}

TEST_P(EngineConformance, RepeatedRunsReportPerCallStats) {
  // Every kind reports per-call stats: a second run with the same budget
  // accounts only its own steps, never the lifetime total.
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  std::unique_ptr<Engine> engine = make_engine(GetParam(), loop);
  const RunResult first = engine->run({50});
  const RunResult second = engine->run({50});
  EXPECT_EQ(first.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(second.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(first.stats.cycles, 50u);
  EXPECT_EQ(second.stats.cycles, 50u);
  // The architectural state, by contrast, does advance across runs.
  EXPECT_NE(first.state.art9().trf.read(1), second.state.art9().trf.read(1));
}

TEST_P(EngineConformance, PipelineConfigBudgetCapsEachRun) {
  // EngineOptions.pipeline.max_cycles is honoured behind the facade as a
  // per-run cap (the tighter of it and RunOptions.max_steps wins); the
  // functional kinds ignore it.
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  EngineOptions options;
  options.pipeline.max_cycles = 40;
  std::unique_ptr<Engine> engine = make_engine(GetParam(), decode(loop), options);
  const RunResult r = engine->run({100});
  EXPECT_EQ(r.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(r.stats.cycles, is_cycle_accurate(GetParam()) ? 40u : 100u);
}

TEST_P(EngineConformance, HaltingProgramReportsHalted) {
  std::unique_ptr<Engine> engine = make_engine(GetParam(), isa::assemble("LIMM T1, 7\nHALT\n"));
  const RunResult r = engine->run({});
  EXPECT_EQ(r.halt, HaltReason::kHalted);
  EXPECT_EQ(r.state.art9().trf.read(1).to_int(), 7);
}

// --- run_stats() is run() without the snapshot -------------------------------

TEST_P(EngineConformance, RunStatsMatchesRun) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(opcode_corpus()[0]));
  std::unique_ptr<Engine> stats_only = make_engine(GetParam(), image);
  std::unique_ptr<Engine> full = make_engine(GetParam(), image);
  const SimStats stats = stats_only->run_stats({});
  const RunResult r = full->run({});
  EXPECT_EQ(stats, r.stats);
  EXPECT_EQ(stats_only->state(), r.state);
}

// --- step() matches run() ----------------------------------------------------

TEST_P(EngineConformance, StepLoopMatchesRun) {
  const isa::Program program = isa::assemble(opcode_corpus()[0]);
  const std::shared_ptr<const DecodedImage> image = decode(program);
  std::unique_ptr<Engine> stepped = make_engine(GetParam(), image);
  std::unique_ptr<Engine> ran = make_engine(GetParam(), image);
  uint64_t guard = 0;
  while (stepped->step() && ++guard < 1'000'000) {
  }
  const RunResult r = ran->run({});
  EXPECT_EQ(stepped->state(), r.state);
}

// --- the retired-instruction observer ----------------------------------------

TEST_P(EngineConformance, ObserverSeesEveryRetiredInstruction) {
  const isa::Program program = isa::assemble(opcode_corpus()[4]);  // JAL/JALR linkage
  std::unique_ptr<Engine> engine = make_engine(GetParam(), program);
  std::vector<Retired> stream;
  engine->set_observer([&](const Retired& r) { stream.push_back(r); });
  const RunResult r = engine->run({});
  ASSERT_EQ(stream.size(), r.stats.instructions);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].index, i);
    // The stream is the executed path: each pc must hold the instruction
    // the observer reported.
    EXPECT_EQ(isa::to_string(engine->image().fetch(stream[i].pc).inst),
              isa::to_string(stream[i].art9()));
  }
  // First retired instruction is the entry instruction.
  EXPECT_EQ(stream.front().pc, program.entry);

  // The stream is identical to the golden model's (same corpus, every
  // kind): lock against the functional engine's stream.
  std::unique_ptr<Engine> golden = make_engine(EngineKind::kFunctional, program);
  std::vector<Retired> golden_stream;
  golden->set_observer([&](const Retired& g) { golden_stream.push_back(g); });
  static_cast<void>(golden->run({}));
  ASSERT_EQ(stream.size(), golden_stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].pc, golden_stream[i].pc) << "index " << i;
    EXPECT_EQ(isa::to_string(stream[i].art9()), isa::to_string(golden_stream[i].art9()));
  }
}

TEST_P(EngineConformance, ObserverInstalledMidRunNumbersFromZero) {
  // The stream is numbered from each installation, on every kind — even
  // when the engine has already retired instructions.
  const isa::Program loop = isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n");
  std::unique_ptr<Engine> engine = make_engine(GetParam(), loop);
  static_cast<void>(engine->run({10}));  // retire a few first
  std::vector<Retired> stream;
  engine->set_observer([&](const Retired& r) { stream.push_back(r); });
  static_cast<void>(engine->run({10}));
  ASSERT_FALSE(stream.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) EXPECT_EQ(stream[i].index, i);
}

TEST_P(EngineConformance, ObserverRemovalRestoresFastPath) {
  std::unique_ptr<Engine> engine = make_engine(GetParam(), isa::assemble("LIMM T1, 3\nHALT\n"));
  uint64_t fires = 0;
  engine->set_observer([&](const Retired&) { ++fires; });
  engine->set_observer({});
  const RunResult r = engine->run({});
  EXPECT_EQ(fires, 0u);
  EXPECT_EQ(r.halt, HaltReason::kHalted);
}

// --- uninitialised-fetch trap parity ----------------------------------------

TEST_P(EngineConformance, UninitialisedFetchTraps) {
  // Fall off the end of a program with no halt: every kind must throw.
  isa::Program program;
  program.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  program.entry = 0;
  std::unique_ptr<Engine> engine = make_engine(GetParam(), program);
  EXPECT_THROW(static_cast<void>(engine->run({})), SimError);
}

INSTANTIATE_TEST_SUITE_P(Art9Kinds, EngineConformance,
                         ::testing::ValuesIn(art9_engine_kinds()),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(engine_kind_name(info.param));
                         });

// ===========================================================================
// RV32 kinds — the same contract, mirrored onto the binary baseline.
// ===========================================================================

class Rv32EngineConformance : public ::testing::TestWithParam<EngineKind> {
 protected:
  /// Golden reference: the seed LazyRv32Simulator (differential baseline).
  struct Golden {
    rv32::Rv32ArchState state;
    rv32::Rv32RunStats stats;
  };

  static Golden reference(const rv32::Rv32Program& program, uint64_t budget) {
    rv32::LazyRv32Simulator sim(program);
    const rv32::Rv32RunStats stats = sim.run(budget);
    return Golden{sim.state(), stats};
  }

  void expect_conforms(const std::string& source, uint64_t budget = kBudget) {
    const rv32::Rv32Program program = rv32::assemble_rv32(source);
    const Golden golden = reference(program, budget);
    std::unique_ptr<Engine> engine = make_engine(GetParam(), rv32::decode(program));
    ASSERT_EQ(engine->kind(), GetParam());
    const RunResult got = engine->run({budget});
    EXPECT_EQ(got.halt, got.stats.halt);
    EXPECT_EQ(got.halt,
              golden.stats.halted ? HaltReason::kHalted : HaltReason::kMaxCycles);
    EXPECT_EQ(got.stats.instructions, golden.stats.instructions);
    EXPECT_EQ(got.stats.cycles, golden.stats.instructions);  // functional kinds
    ASSERT_TRUE(got.state.is_rv32());
    EXPECT_EQ(got.state.rv32().regs, golden.state.regs);
    EXPECT_EQ(got.state.rv32().pc, golden.state.pc);
    EXPECT_EQ(got.state.rv32().ram, golden.state.ram);  // every byte
  }
};

// --- the acceptance corpus: all four paper benchmarks (rv32 sources) ---------

TEST_P(Rv32EngineConformance, BitIdenticalOnBenchmarkCorpus) {
  for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
    SCOPED_TRACE(bench->name);
    expect_conforms(bench->rv32);
  }
}

// --- every-opcode RV32I(+M) corpus -------------------------------------------

TEST_P(Rv32EngineConformance, BitIdenticalOnOpcodeCorpus) {
  for (const std::string& source : rv32_opcode_corpus()) {
    expect_conforms(source, 2'000);
  }
}

// --- budget exhaustion -------------------------------------------------------

TEST_P(Rv32EngineConformance, TinyBudgetOnInfiniteLoopReportsMaxCycles) {
  std::unique_ptr<Engine> engine =
      make_engine(GetParam(), rv32::assemble_rv32("loop:\n  addi t0, t0, 1\n  j loop\n"));
  const RunResult r = engine->run({50});
  EXPECT_EQ(r.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(r.stats.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(r.stats.instructions, 50u);  // budget is an instruction count
}

TEST_P(Rv32EngineConformance, RepeatedRunsReportPerCallStats) {
  std::unique_ptr<Engine> engine =
      make_engine(GetParam(), rv32::assemble_rv32("loop:\n  addi t0, t0, 1\n  j loop\n"));
  const RunResult first = engine->run({50});
  const RunResult second = engine->run({50});
  EXPECT_EQ(first.stats.instructions, 50u);
  EXPECT_EQ(second.stats.instructions, 50u);
  EXPECT_NE(first.state.rv32().regs[5], second.state.rv32().regs[5]);  // t0 advances
}

TEST_P(Rv32EngineConformance, HaltingProgramReportsHalted) {
  std::unique_ptr<Engine> engine =
      make_engine(GetParam(), rv32::assemble_rv32("li a0, 7\nebreak\n"));
  const RunResult r = engine->run({});
  EXPECT_EQ(r.halt, HaltReason::kHalted);
  EXPECT_EQ(r.state.rv32().regs[10], 7u);
}

// --- run_stats() is run() without the snapshot -------------------------------

TEST_P(Rv32EngineConformance, RunStatsMatchesRun) {
  const std::shared_ptr<const rv32::Rv32DecodedImage> image =
      rv32::decode(rv32::assemble_rv32(rv32_opcode_corpus()[0]));
  std::unique_ptr<Engine> stats_only = make_engine(GetParam(), image);
  std::unique_ptr<Engine> full = make_engine(GetParam(), image);
  const SimStats stats = stats_only->run_stats({});
  const RunResult r = full->run({});
  EXPECT_EQ(stats, r.stats);
  EXPECT_EQ(stats_only->state(), r.state);
}

// --- step() matches run() ----------------------------------------------------

TEST_P(Rv32EngineConformance, StepLoopMatchesRun) {
  const std::shared_ptr<const rv32::Rv32DecodedImage> image =
      rv32::decode(rv32::assemble_rv32(rv32_opcode_corpus()[0]));
  std::unique_ptr<Engine> stepped = make_engine(GetParam(), image);
  std::unique_ptr<Engine> ran = make_engine(GetParam(), image);
  uint64_t guard = 0;
  while (stepped->step() && ++guard < 1'000'000) {
  }
  const RunResult r = ran->run({});
  EXPECT_EQ(stepped->state(), r.state);
}

// --- the retired-instruction observer ----------------------------------------

TEST_P(Rv32EngineConformance, ObserverSeesEveryRetiredInstruction) {
  // The rv32 stream keeps the native Rv32Simulator::Observer convention:
  // the halting ECALL/EBREAK is observed (the baseline cycle models need
  // it), so a halted run streams instructions + 1 events.
  const std::string source = rv32_opcode_corpus()[4];  // JAL/JALR linkage
  std::unique_ptr<Engine> engine = make_engine(GetParam(), rv32::assemble_rv32(source));
  std::vector<Retired> stream;
  engine->set_observer([&](const Retired& r) { stream.push_back(r); });
  const RunResult r = engine->run({});
  ASSERT_EQ(r.halt, HaltReason::kHalted);
  ASSERT_EQ(stream.size(), r.stats.instructions + 1);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].index, i);
    EXPECT_TRUE(stream[i].is_rv32());
  }
  EXPECT_EQ(stream.back().rv32().op, rv32::Rv32Op::kEbreak);

  // Identical to the reference rv32 engine's stream (inst, pc, taken).
  std::unique_ptr<Engine> golden = make_engine(EngineKind::kRv32, rv32::assemble_rv32(source));
  std::vector<Retired> golden_stream;
  golden->set_observer([&](const Retired& g) { golden_stream.push_back(g); });
  static_cast<void>(golden->run({}));
  ASSERT_EQ(stream.size(), golden_stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].pc, golden_stream[i].pc) << "index " << i;
    EXPECT_EQ(stream[i].taken, golden_stream[i].taken) << "index " << i;
    EXPECT_EQ(rv32::to_string(stream[i].rv32()), rv32::to_string(golden_stream[i].rv32()));
  }
}

TEST_P(Rv32EngineConformance, ObserverInstalledMidRunNumbersFromZero) {
  std::unique_ptr<Engine> engine =
      make_engine(GetParam(), rv32::assemble_rv32("loop:\n  addi t0, t0, 1\n  j loop\n"));
  static_cast<void>(engine->run({10}));  // retire a few first
  std::vector<Retired> stream;
  engine->set_observer([&](const Retired& r) { stream.push_back(r); });
  static_cast<void>(engine->run({10}));
  ASSERT_FALSE(stream.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) EXPECT_EQ(stream[i].index, i);
}

TEST_P(Rv32EngineConformance, ObserverRemovalRestoresFastPath) {
  std::unique_ptr<Engine> engine =
      make_engine(GetParam(), rv32::assemble_rv32("li a0, 3\nebreak\n"));
  uint64_t fires = 0;
  engine->set_observer([&](const Retired&) { ++fires; });
  engine->set_observer({});
  const RunResult r = engine->run({});
  EXPECT_EQ(fires, 0u);
  EXPECT_EQ(r.halt, HaltReason::kHalted);
}

// --- trap parity -------------------------------------------------------------

TEST_P(Rv32EngineConformance, FetchOutsideProgramTraps) {
  // Fall off the end of a program with no halt: every rv32 kind throws
  // the rv32 error type, exactly like the seed loop.
  std::unique_ptr<Engine> engine = make_engine(GetParam(), rv32::assemble_rv32("nop\n"));
  EXPECT_THROW(static_cast<void>(engine->run({})), rv32::Rv32SimError);
}

TEST_P(Rv32EngineConformance, OutOfRangeStoreTraps) {
  // Bounds violations surface as Rv32SimError with the faulting address,
  // identically on both datapaths (regression for the seed's unchecked
  // uint32 wraparound in SH/SW near the top of the address space).
  std::unique_ptr<Engine> engine = make_engine(
      GetParam(), rv32::assemble_rv32("li a0, -2\nsw a1, 0(a0)\nebreak\n"));
  try {
    static_cast<void>(engine->run({}));
    FAIL() << "expected Rv32SimError";
  } catch (const rv32::Rv32SimError& e) {
    EXPECT_NE(std::string(e.what()).find("4294967294"), std::string::npos) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Rv32Kinds, Rv32EngineConformance,
                         ::testing::ValuesIn(rv32_engine_kinds()),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(engine_kind_name(info.param));
                         });

// --- facade plumbing ---------------------------------------------------------

TEST(Engine, KindNamesRoundTrip) {
  for (EngineKind kind : all_engine_kinds()) {
    EXPECT_EQ(parse_engine_kind(engine_kind_name(kind)), kind);
  }
  EXPECT_EQ(parse_engine_kind("no-such-engine"), std::nullopt);
}

TEST(Engine, NullImageThrows) {
  EXPECT_THROW(
      static_cast<void>(make_engine(EngineKind::kPacked, std::shared_ptr<const DecodedImage>{})),
      std::invalid_argument);
  EXPECT_THROW(static_cast<void>(make_engine(EngineKind::kRv32,
                                             std::shared_ptr<const rv32::Rv32DecodedImage>{})),
               std::invalid_argument);
}

TEST(Engine, KindMustMatchImageIsa) {
  const std::shared_ptr<const DecodedImage> art9_image = decode(isa::assemble("HALT\n"));
  const std::shared_ptr<const rv32::Rv32DecodedImage> rv32_image =
      rv32::decode(rv32::assemble_rv32("ebreak\n"));
  EXPECT_THROW(static_cast<void>(make_engine(EngineKind::kRv32, art9_image)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(make_engine(EngineKind::kPacked, rv32_image)),
               std::invalid_argument);
  // The EngineImage variant dispatches on the alternative.
  EXPECT_EQ(make_engine(EngineKind::kRv32, EngineImage{rv32_image})->kind(), EngineKind::kRv32);
  EXPECT_EQ(make_engine(EngineKind::kPacked, EngineImage{art9_image})->kind(),
            EngineKind::kPacked);
}

TEST(Engine, SharedImageIsExposed) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble("HALT\n"));
  for (EngineKind kind : art9_engine_kinds()) {
    std::unique_ptr<Engine> engine = make_engine(kind, image);
    EXPECT_EQ(&engine->image(), image.get()) << engine_kind_name(kind);
    EXPECT_THROW(static_cast<void>(engine->rv32_image()), SimError);
  }
  const std::shared_ptr<const rv32::Rv32DecodedImage> rv32_image =
      rv32::decode(rv32::assemble_rv32("ebreak\n"));
  for (EngineKind kind : rv32_engine_kinds()) {
    std::unique_ptr<Engine> engine = make_engine(kind, rv32_image);
    EXPECT_EQ(&engine->rv32_image(), rv32_image.get()) << engine_kind_name(kind);
    EXPECT_THROW(static_cast<void>(engine->image()), SimError);
  }
}

}  // namespace
}  // namespace art9::sim
