// Functional (golden) simulator: architectural semantics of every
// instruction class, the halt convention, and memory behaviour.
#include "sim/functional_sim.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace art9::sim {
namespace {

using isa::assemble;
using ternary::Word9;

FunctionalSimulator run(const std::string& source) {
  FunctionalSimulator sim(assemble(source));
  const SimStats stats = sim.run(1'000'000);
  EXPECT_EQ(stats.halt, HaltReason::kHalted);
  return sim;
}

TEST(FunctionalSim, ImmediateMaterialisation) {
  auto sim = run(R"(
    LIMM T1, 1234
    LIMM T2, -9841
    LUI  T3, 2
    LI   T3, -100
    HALT
)");
  EXPECT_EQ(sim.reg_int(1), 1234);
  EXPECT_EQ(sim.reg_int(2), -9841);
  EXPECT_EQ(sim.reg_int(3), 2 * 243 - 100);
}

TEST(FunctionalSim, ArithmeticChain) {
  auto sim = run(R"(
    LIMM T1, 100
    LIMM T2, 23
    ADD  T1, T2      ; 123
    SUB  T1, T2      ; 100
    SLI  T1, 2       ; 900
    SRI  T1, 1       ; 300
    ADDI T1, -13     ; 287
    HALT
)");
  EXPECT_EQ(sim.reg_int(1), 287);
}

TEST(FunctionalSim, CompAndBranches) {
  auto sim = run(R"(
    LIMM T1, 5
    LIMM T2, 7
    MV   T3, T1
    COMP T3, T2      ; T3 = -1 (5 < 7)
    BEQ  T3, -, less
    LIMM T4, 111     ; skipped
less:
    LIMM T5, 222
    HALT
)");
  EXPECT_EQ(sim.reg_int(3), -1);
  EXPECT_EQ(sim.reg_int(4), 0);
  EXPECT_EQ(sim.reg_int(5), 222);
}

TEST(FunctionalSim, BranchChecksLstOnly) {
  // 9 = +00 in balanced ternary: its LST is 0, so BEQ ...,0 takes.
  auto sim = run(R"(
    LIMM T1, 9
    BEQ  T1, 0, taken
    LIMM T2, 1
taken:
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 0);
}

TEST(FunctionalSim, CountedLoop) {
  auto sim = run(R"(
    LIMM T1, 10     ; counter
    LIMM T2, 0      ; sum
    LIMM T3, 0      ; zero
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T4, T1
    COMP T4, T3
    BNE  T4, 0, loop
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 55);
  EXPECT_EQ(sim.reg_int(1), 0);
}

TEST(FunctionalSim, JalLinkAndJalrReturn) {
  auto sim = run(R"(
    LIMM T1, 1
    JAL  T8, func    ; call
    LIMM T2, 99      ; executed after return
    HALT
func:
    LIMM T3, 42
    JALR T0, T8, 0   ; return
)");
  EXPECT_EQ(sim.reg_int(2), 99);
  EXPECT_EQ(sim.reg_int(3), 42);
  // T8 holds the link: address of `LIMM T2` (JAL at address 2+1 = 3).
  EXPECT_EQ(sim.reg_int(8), 3);
}

TEST(FunctionalSim, LoadStore) {
  auto sim = run(R"(
.data
.org 50
src: .word 77, -88
.text
    LIMM T1, 50
    LOAD T2, 0(T1)
    LOAD T3, 1(T1)
    ADD  T2, T3
    STORE T2, 2(T1)
    LOAD T4, -13(T1)   ; uninitialised -> 0
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), -11);
  EXPECT_EQ(sim.state().tdm.peek(52).to_int(), -11);
  EXPECT_EQ(sim.reg_int(4), 0);
}

TEST(FunctionalSim, NegativeAddressesAreValid) {
  auto sim = run(R"(
    LIMM T1, -5
    LIMM T2, 321
    STORE T2, 0(T1)
    LOAD  T3, 0(T1)
    HALT
)");
  EXPECT_EQ(sim.reg_int(3), 321);
}

TEST(FunctionalSim, HaltLeavesStateClean) {
  // HALT (JAL T0, 0) performs no link write.
  auto sim = run(R"(
    LIMM T0, 7
    HALT
)");
  EXPECT_EQ(sim.reg_int(0), 7);
  EXPECT_EQ(sim.state().pc, 2);  // resting on the halt instruction
}

TEST(FunctionalSim, JalrSelfJumpHalts) {
  auto sim = run(R"(
    LIMM T1, 2      ; address of the JALR itself
    JALR T2, T1, 0
)");
  EXPECT_EQ(sim.reg_int(2), 0);  // no link write on halt
}

TEST(FunctionalSim, RunStatistics) {
  FunctionalSimulator sim(assemble("NOP\nNOP\nNOP\nHALT\n"));
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.instructions, 3u);  // halt not counted
  EXPECT_EQ(stats.halt, HaltReason::kHalted);
}

TEST(FunctionalSim, MaxInstructionBudget) {
  // Infinite loop (JAL back) must stop at the budget.
  FunctionalSimulator sim(assemble("loop: JAL T1, loop2\nloop2: JAL T1, loop\nHALT\n"));
  const SimStats stats = sim.run(100);
  EXPECT_EQ(stats.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(stats.instructions, 100u);
}

TEST(FunctionalSim, FetchFromUninitialisedTimThrows) {
  FunctionalSimulator sim(assemble("NOP\n"));  // falls off the end
  sim.step();
  EXPECT_THROW(sim.step(), SimError);
}

TEST(FunctionalSim, PcWrapsAtWordBoundary) {
  // Manually-constructed program at the top of the address space.
  isa::Program p = assemble(".org 9840\nNOP\nHALT\n");
  FunctionalSimulator sim(p);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.state().pc, 9841);
  EXPECT_FALSE(sim.step());  // halt at wrapped... address 9841 holds HALT
}

}  // namespace
}  // namespace art9::sim
