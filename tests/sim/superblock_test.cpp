// Superblock-tier regression suite, both ISAs: the block translation's
// macro-op fusion must be architecturally invisible.  Locks
//  * that the fused-heavy corpus actually takes every fusion pattern
//    (plan counters — a silent fusion regression would otherwise leave
//    the parity tests green while benching the unfused path);
//  * bit-identity of the fused path against the golden per-instruction
//    model at *every* budget 0..N — including budgets that die between
//    the two halves of a fused pair and exactly at a block body's end
//    before a halt/trap terminator (the min_budget entry-clamp edge);
//  * that a trap in the middle of a block reports the precise faulting
//    PC, with the committed post-trap state bit-identical to golden.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_superblock.hpp"
#include "sim/engine.hpp"
#include "sim/superblock.hpp"

namespace art9::sim {
namespace {

// ---------------------------------------------------------------------------
// Corpora

/// One straight line through every ART-9 fusion pattern: LUI+LI and
/// LUI+ADDI constant formation, LOAD feeding a register ALU op, and a
/// COMP whose result is only consumed by the following branch.
const char* art9_fused_source() {
  return R"(
    LIMM  T4, 100
    LIMM  T2, 7
    STORE T2, 0(T4)
    LUI   T1, 3
    LI    T1, 5
    LUI   T2, 2
    ADDI  T2, 7
    LOAD  T3, 0(T4)
    ADD   T5, T3
    COMP  T6, T1
    BEQ   T6, 0, skip
    ADDI  T7, 1
  skip:
    HALT
  )";
}

/// Every ART-9 opcode in one program: arithmetic/logic/inverters,
/// immediate forms, both shift families, all three branch trits taken
/// and not, JAL/JALR linkage, memory traffic — so block building,
/// fusion candidacy and the per-instruction tail are all exercised.
const char* art9_every_opcode_source() {
  return R"(
    LIMM  T1, 1234
    LIMM  T2, -77
    ADD   T1, T2
    SUB   T2, T1
    AND   T1, T2
    OR    T2, T1
    XOR   T1, T2
    STI   T3, T1
    NTI   T4, T1
    PTI   T5, T2
    MV    T6, T5
    ANDI  T1, 13
    ADDI  T1, -13
    LUI   T2, -40
    LI    T2, 121
    SR    T1, T5
    SL    T1, T5
    SRI   T1, 8
    SLI   T1, 3
    LIMM  T7, -9000
    STORE T2, -3(T7)
    LOAD  T3, -3(T7)
    COMP  T6, T0
    BEQ   T6, 0, fwd
    ADDI  T5, 1
  fwd:
    BNE   T6, -, fwd2
    ADDI  T5, 2
  fwd2:
    JAL   T8, sub
    ADDI  T5, 4
    HALT
  sub:
    ADDI  T5, 5
    JALR  T0, T8, 0
  )";
}

/// One straight line through every rv32 fusion pattern: LUI+ADDI
/// constant formation, LW feeding an ADD, and an SLTI consumed only by
/// a BNE against x0.
const char* rv32_fused_source() {
  return R"(
    li   t3, 64
    li   t4, 7
    sw   t4, 0(t3)
    lui  t0, 1
    addi t0, t0, 37
    lw   t1, 0(t3)
    add  t2, t1, t4
    slti t5, t2, 100
    bne  t5, x0, skip
    addi t6, t6, 1
  skip:
    ebreak
  )";
}

// ---------------------------------------------------------------------------
// Helpers

/// Runs `kind` on the program with the given budget and returns the
/// uniform result (state + stats + halt).
RunResult run_art9(EngineKind kind, const isa::Program& program, uint64_t budget) {
  return make_engine(kind, program)->run({.max_steps = budget});
}

/// Asserts two kinds agree bit-identically (state, stats, halt reason)
/// on every budget 0..limit — tiny budgets land inside fused pairs and
/// exactly on block-body boundaries, full budgets cover the halt path.
template <class Program>
void expect_budget_sweep_identical(EngineKind golden_kind, EngineKind tested_kind,
                                   const Program& program, uint64_t limit) {
  for (uint64_t budget = 0; budget <= limit; ++budget) {
    std::unique_ptr<Engine> golden = make_engine(golden_kind, program);
    std::unique_ptr<Engine> tested = make_engine(tested_kind, program);
    const RunResult want = golden->run({.max_steps = budget});
    const RunResult got = tested->run({.max_steps = budget});
    EXPECT_EQ(want.stats, got.stats) << "budget=" << budget;
    EXPECT_EQ(want.halt, got.halt) << "budget=" << budget;
    EXPECT_TRUE(want.state == got.state) << "state diverged at budget=" << budget;
  }
}

/// Runs to the trap and returns the exception message (fails the test
/// if the run does not trap).
std::string trap_message(Engine& engine) {
  try {
    static_cast<void>(engine.run_stats({.max_steps = 1'000'000}));
  } catch (const std::exception& error) {
    return error.what();
  }
  ADD_FAILURE() << "run did not trap";
  return {};
}

// ---------------------------------------------------------------------------
// ART-9

TEST(SuperblockPlan, FusedCorpusTakesEveryPattern) {
  const SuperblockSimulator sim(isa::assemble(art9_fused_source()));
  const SuperblockPlan& plan = sim.plan();
  EXPECT_GT(plan.fused_const, 0u);
  EXPECT_GT(plan.fused_cmp_branch, 0u);
  EXPECT_GT(plan.fused_load_op, 0u);
  EXPECT_FALSE(plan.blocks.empty());
}

TEST(SuperblockParity, FusedCorpusBitIdenticalAtEveryBudget) {
  const isa::Program program = isa::assemble(art9_fused_source());
  const SimStats full = make_engine(EngineKind::kFunctional, program)->run_stats();
  ASSERT_EQ(full.halt, HaltReason::kHalted);
  expect_budget_sweep_identical(EngineKind::kFunctional, EngineKind::kSuperblock, program,
                                full.instructions + 2);
}

TEST(SuperblockParity, EveryOpcodeCorpusBitIdenticalAtEveryBudget) {
  const isa::Program program = isa::assemble(art9_every_opcode_source());
  const SimStats full = make_engine(EngineKind::kFunctional, program)->run_stats();
  ASSERT_EQ(full.halt, HaltReason::kHalted);
  expect_budget_sweep_identical(EngineKind::kFunctional, EngineKind::kSuperblock, program,
                                full.instructions + 2);
}

TEST(SuperblockPlan, AddiChainsFoldAcrossRunsOfOneRegister) {
  // Three fusable runs reachable from the entry: a 4-deep chain on T1, a
  // 2-deep chain on T2, and a pair on T3 split by an op on another
  // register (the T4 write breaks the chain).  Every TIM row gets its
  // own block, so suffixes of each chain re-fuse in later-entry blocks —
  // the counter is a lower bound of 3, not an exact 3.
  const SuperblockSimulator sim(isa::assemble(R"(
    ADDI T1, 1
    ADDI T1, 2
    ADDI T1, 3
    ADDI T1, -4
    ADDI T2, 13
    ADDI T2, -11
    ADDI T3, 5
    ADDI T3, 6
    ADDI T4, 9
    ADDI T3, 7
    HALT
  )"));
  EXPECT_GE(sim.plan().fused_addi_chain, 3u);
}

TEST(SuperblockParity, AddiChainBitIdenticalAtEveryBudget) {
  // Budgets dying inside a folded chain must still observe every
  // intermediate architectural state (the partial block steps on the
  // per-instruction tail) — including wrap-around past +-9841.
  const isa::Program program = isa::assemble(R"(
    LIMM  T1, 9835
    ADDI  T1, 13
    ADDI  T1, 13
    ADDI  T1, 13
    ADDI  T2, -3
    ADDI  T2, -4
    ADDI  T2, -5
    ADD   T2, T1
    HALT
  )");
  const SuperblockSimulator sim(program);
  EXPECT_GT(sim.plan().fused_addi_chain, 0u);
  const SimStats full = make_engine(EngineKind::kFunctional, program)->run_stats();
  ASSERT_EQ(full.halt, HaltReason::kHalted);
  expect_budget_sweep_identical(EngineKind::kFunctional, EngineKind::kSuperblock, program,
                                full.instructions + 2);
  // The fleet backend shares the plan (and the folded fast path).
  expect_budget_sweep_identical(EngineKind::kFunctional, EngineKind::kFleet, program,
                                full.instructions + 2);
}

TEST(SuperblockParity, TinyBudgetAgainstHaltTerminatedBlock) {
  // Budget dying exactly at the block body's end must report kMaxCycles
  // without attempting the halt terminator (the min_budget clamp); one
  // more step retires the halt convention.
  const isa::Program program = isa::assemble("ADDI T1, 1\nADDI T2, 1\nHALT\n");
  expect_budget_sweep_identical(EngineKind::kFunctional, EngineKind::kSuperblock, program, 4);
}

TEST(SuperblockTrap, MidBlockTrapReportsPreciseFaultingPc) {
  // Straight-line block that runs off the end of the program: the block
  // retires its body, then the fetch of the next row faults.  The
  // message must name the exact faulting PC and the committed state
  // must match the golden model's bit-identically.
  const isa::Program program = isa::assemble("ADDI T1, 1\nADDI T2, 1\nADDI T3, 1\n");

  std::unique_ptr<Engine> golden = make_engine(EngineKind::kFunctional, program);
  std::unique_ptr<Engine> tested = make_engine(EngineKind::kSuperblock, program);
  const std::string want = trap_message(*golden);
  const std::string got = trap_message(*tested);
  EXPECT_EQ(want, got);

  const ArchState after = tested->state().art9();
  EXPECT_EQ(after, golden->state().art9());
  EXPECT_NE(got.find("fetch from uninitialised TIM address " + std::to_string(after.pc)),
            std::string::npos)
      << got;

  // Budgets that exhaust before the faulting fetch must not trap.
  for (uint64_t budget = 0; budget <= 3; ++budget) {
    EXPECT_EQ(run_art9(EngineKind::kSuperblock, program, budget).halt, HaltReason::kMaxCycles)
        << "budget=" << budget;
  }
}

// ---------------------------------------------------------------------------
// RV32

TEST(Rv32SuperblockPlan, FusedCorpusTakesEveryPattern) {
  const rv32::Rv32SuperblockSimulator sim(rv32::assemble_rv32(rv32_fused_source()));
  const rv32::Rv32SuperblockPlan& plan = sim.plan();
  EXPECT_GT(plan.fused_const, 0u);
  EXPECT_GT(plan.fused_cmp_branch, 0u);
  EXPECT_GT(plan.fused_load_op, 0u);
  EXPECT_FALSE(plan.blocks.empty());
}

TEST(Rv32SuperblockParity, FusedCorpusBitIdenticalAtEveryBudget) {
  const rv32::Rv32Program program = rv32::assemble_rv32(rv32_fused_source());
  const SimStats full = make_engine(EngineKind::kRv32, program)->run_stats();
  ASSERT_EQ(full.halt, HaltReason::kHalted);
  expect_budget_sweep_identical(EngineKind::kRv32, EngineKind::kRv32Superblock, program,
                                full.instructions + 2);
}

TEST(Rv32SuperblockParity, TinyBudgetAgainstEbreakTerminatedBlock) {
  // Same min_budget edge as ART-9: the budget must be able to die
  // exactly before the halting EBREAK.
  const rv32::Rv32Program program =
      rv32::assemble_rv32("addi t0, t0, 1\naddi t0, t0, 2\nebreak\n");
  expect_budget_sweep_identical(EngineKind::kRv32, EngineKind::kRv32Superblock, program, 4);
}

TEST(Rv32SuperblockTrap, MidBlockStoreTrapReportsPreciseFaultingPc) {
  // The faulting store sits mid-block after two ALU ops; the committed
  // PC must be the store's own, identical to the reference model.
  const rv32::Rv32Program program = rv32::assemble_rv32(R"(
    addi t0, t0, 1
    addi t1, t1, 2
    li   a0, -2
    sw   a1, 0(a0)
    ebreak
  )");

  std::unique_ptr<Engine> golden = make_engine(EngineKind::kRv32, program);
  std::unique_ptr<Engine> tested = make_engine(EngineKind::kRv32Superblock, program);
  const std::string want = trap_message(*golden);
  const std::string got = trap_message(*tested);
  EXPECT_EQ(want, got);
  EXPECT_TRUE(golden->state().rv32() == tested->state().rv32());
}

TEST(Rv32SuperblockTrap, FetchOffEndReportsPreciseFaultingPc) {
  // No ebreak: the block falls off the program and the fetch faults at
  // entry + 3 instructions; the message names that exact byte PC.
  const rv32::Rv32Program program =
      rv32::assemble_rv32("addi t0, t0, 1\naddi t1, t1, 2\naddi t2, t2, 3\n");

  std::unique_ptr<Engine> golden = make_engine(EngineKind::kRv32, program);
  std::unique_ptr<Engine> tested = make_engine(EngineKind::kRv32Superblock, program);
  const std::string want = trap_message(*golden);
  const std::string got = trap_message(*tested);
  EXPECT_EQ(want, got);

  const rv32::Rv32ArchState after = tested->state().rv32();
  EXPECT_TRUE(after == golden->state().rv32());
  EXPECT_NE(got.find("pc=" + std::to_string(after.pc)), std::string::npos) << got;
}

}  // namespace
}  // namespace art9::sim
