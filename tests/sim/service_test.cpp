// SimulationService: the thread-parallel batch scheduler must be
// observationally identical to standalone Engine runs — bit-identical
// results in job order, regardless of worker-pool width — and must
// isolate job failures as per-job outcomes instead of swallowing (or
// rethrowing away) sibling results.
#include "sim/service.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/benchmarks.hpp"
#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "xlat/framework.hpp"

namespace art9::sim {
namespace {

/// Eight small programs covering every instruction class: straight-line
/// arithmetic, loops, memory traffic, JALR returns, and one that never
/// halts (so kMaxCycles must round-trip too).
const std::array<std::string, 8>& batch_programs() {
  static const std::array<std::string, 8> kPrograms = {
      "LIMM T1, 1234\nLIMM T2, -77\nADD T1, T2\nHALT\n",
      R"(
        LIMM T1, 50
        LIMM T2, 0
      loop:
        ADD  T2, T1
        ADDI T1, -1
        MV   T3, T1
        COMP T3, T4
        BNE  T3, 0, loop
        HALT
      )",
      R"(
        LIMM T1, 60
        LIMM T2, 42
        STORE T2, 3(T1)
        LOAD  T3, 3(T1)
        HALT
      )",
      R"(
        LIMM T5, 0
        JAL  T8, sub
        ADDI T5, 2
        HALT
      sub:
        ADDI T5, 5
        JALR T0, T8, 0
      )",
      R"(
        LIMM T1, 1000
        SRI  T1, 2
        SLI  T1, 1
        LIMM T2, -481
        AND  T1, T2
        OR   T1, T2
        XOR  T1, T2
        HALT
      )",
      R"(
        LIMM T1, 88
        MV   T2, T1
        STI  T2, T2
        PTI  T3, T1
        NTI  T4, T1
        COMP T2, T1
        HALT
      )",
      R"(
        LIMM T1, 1
        COMP T1, T0
        BEQ  T1, +, skip
        LIMM T7, 9841
      skip:
        ADDI T6, 4
        HALT
      )",
      "loop:\n  ADDI T1, 1\n  JAL T0, loop\n",
  };
  return kPrograms;
}

constexpr RunOptions kBudget{2'000};

/// Four small rv32 programs riding the same batch (cross-ISA mixing):
/// arithmetic, a loop, memory traffic, and one that never halts.
const std::array<std::string, 4>& rv32_batch_programs() {
  static const std::array<std::string, 4> kPrograms = {
      "li a0, 100\naddi a1, a0, -30\nadd a2, a0, a1\nebreak\n",
      R"(
        li   a0, 0
        li   a1, 1
      loop:
        add  a0, a0, a1
        addi a1, a1, 1
        li   t0, 11
        blt  a1, t0, loop
        ebreak
      )",
      R"(
        li   a0, 64
        li   a1, -456
        sw   a1, 0(a0)
        lw   a2, 0(a0)
        lb   a3, 1(a0)
        ebreak
      )",
      "loop:\n  addi t0, t0, 1\n  j loop\n",
  };
  return kPrograms;
}

/// Queues the mixed cross-ISA batch: every ART-9 program on every ART-9
/// engine kind, plus every rv32 program on both rv32 kinds, one job each.
/// (The service itself is immovable — it owns a worker pool — so the
/// helper fills a caller-owned instance.)
void add_mixed_batch(SimulationService& service) {
  for (const std::string& source : batch_programs()) {
    const std::shared_ptr<const DecodedImage> image =
        service.add(isa::assemble(source), EngineKind::kLazy, kBudget);
    service.add(image, EngineKind::kFunctional, kBudget);
    service.add(image, EngineKind::kPacked, kBudget);
    service.add(image, EngineKind::kPipeline, kBudget);
    service.add(image, EngineKind::kPackedPipeline, kBudget);
  }
  for (const std::string& source : rv32_batch_programs()) {
    const std::shared_ptr<const rv32::Rv32DecodedImage> image =
        service.add(rv32::assemble_rv32(source), EngineKind::kRv32, kBudget);
    service.add(image, EngineKind::kRv32Packed, kBudget);
  }
}

std::vector<JobResult> run_mixed_batch(unsigned threads) {
  SimulationService service(threads);
  add_mixed_batch(service);
  return service.run_all();
}

TEST(SimulationService, MatchesStandaloneEngineRuns) {
  SimulationService service(1);
  for (const std::string& source : batch_programs()) {
    service.add(isa::assemble(source), EngineKind::kFunctional, kBudget);
  }
  ASSERT_EQ(service.size(), 8u);

  const std::vector<JobResult> results = service.run_all();
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::unique_ptr<Engine> standalone =
        make_engine(EngineKind::kFunctional, isa::assemble(batch_programs()[i]));
    const RunResult expected = standalone->run(kBudget);
    EXPECT_EQ(results[i].run.state, expected.state) << "program " << i;
    EXPECT_EQ(results[i].run.stats, expected.stats) << "program " << i;
    EXPECT_EQ(results[i].run.halt, i == 7 ? HaltReason::kMaxCycles : HaltReason::kHalted)
        << "program " << i;
    EXPECT_EQ(results[i].outcome,
              i == 7 ? JobOutcome::kBudgetExhausted : JobOutcome::kCompleted)
        << "program " << i;
  }
}

TEST(SimulationService, Rv32JobsMatchStandaloneEngineRuns) {
  SimulationService service(4);
  for (const std::string& source : rv32_batch_programs()) {
    service.add(rv32::assemble_rv32(source), EngineKind::kRv32Packed, kBudget);
  }
  const std::vector<JobResult> results = service.run_all();
  ASSERT_EQ(results.size(), rv32_batch_programs().size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::unique_ptr<Engine> standalone =
        make_engine(EngineKind::kRv32Packed, rv32::assemble_rv32(rv32_batch_programs()[i]));
    const RunResult expected = standalone->run(kBudget);
    EXPECT_EQ(results[i].run.state, expected.state) << "program " << i;
    EXPECT_EQ(results[i].run.stats, expected.stats) << "program " << i;
  }
}

TEST(SimulationService, ThreadedResultsBitIdenticalToSequential) {
  // The acceptance gate: threads=N returns results bit-identical to
  // threads=1, across a 48-job mixed-ISA batch (every ART-9 program on
  // all five ART-9 kinds, every rv32 program on both rv32 kinds).
  const std::vector<JobResult> sequential = run_mixed_batch(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    const std::vector<JobResult> parallel = run_mixed_batch(threads);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel[i].run.state, sequential[i].run.state)
          << threads << " threads, job " << i;
      EXPECT_EQ(parallel[i].run.stats, sequential[i].run.stats)
          << threads << " threads, job " << i;
      EXPECT_EQ(parallel[i].outcome, sequential[i].outcome) << threads << " threads, job " << i;
    }
  }
}

TEST(SimulationService, SharedImageMatchesPerJobDecode) {
  const isa::Program program = isa::assemble(batch_programs()[1]);

  SimulationService service(4);
  const std::shared_ptr<const DecodedImage> image =
      service.add(program, EngineKind::kPacked, kBudget);
  for (int i = 0; i < 7; ++i) service.add(image, EngineKind::kPacked, kBudget);
  ASSERT_EQ(service.size(), 8u);

  const std::vector<JobResult> results = service.run_all();
  std::unique_ptr<Engine> standalone = make_engine(EngineKind::kPacked, program);
  const RunResult expected = standalone->run(kBudget);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].run.state, expected.state) << "job " << i;
    EXPECT_EQ(results[i].run.stats, expected.stats) << "job " << i;
  }
}

TEST(SimulationService, RunAllIsRepeatableAndReportsBatchStats) {
  SimulationService service(0);  // hardware_concurrency default
  EXPECT_GE(service.threads(), 1u);
  service.add(isa::assemble(batch_programs()[1]), EngineKind::kFunctional, kBudget);
  service.add(isa::assemble(batch_programs()[7]), EngineKind::kPacked, kBudget);

  SimulationService::BatchStats batch;
  const std::vector<JobResult> first = service.run_all(&batch);
  const std::vector<JobResult> second = service.run_all();
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].run.state, second[i].run.state);
    EXPECT_EQ(first[i].run.stats, second[i].run.stats);
  }

  EXPECT_EQ(batch.instructions,
            first[0].run.stats.instructions + first[1].run.stats.instructions);
  EXPECT_EQ(batch.cycles, first[0].run.stats.cycles + first[1].run.stats.cycles);
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GE(batch.threads, 1u);
  EXPECT_GT(batch.steps_per_sec(), 0.0);
}

TEST(SimulationService, TrappingJobDoesNotDiscardSiblingResults) {
  // The run_all bugfix regression: the pre-async service rethrew the
  // lowest-indexed job's exception and discarded every completed sibling.
  // Now the trapping job resolves kTrapped (with the trap text) while its
  // siblings return results bit-identical to standalone runs.
  isa::Program trap;
  trap.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  trap.entry = 0;

  std::unique_ptr<Engine> first = make_engine(EngineKind::kFunctional,
                                              isa::assemble(batch_programs()[0]));
  const RunResult expected_first = first->run(kBudget);
  std::unique_ptr<Engine> third =
      make_engine(EngineKind::kPipeline, isa::assemble(batch_programs()[2]));
  const RunResult expected_third = third->run(kBudget);

  for (unsigned threads : {1u, 4u}) {
    SimulationService service(threads);
    service.add(isa::assemble(batch_programs()[0]), EngineKind::kFunctional, kBudget);
    service.add(decode(trap), EngineKind::kPacked, kBudget);
    service.add(isa::assemble(batch_programs()[2]), EngineKind::kPipeline, kBudget);

    const std::vector<JobResult> results = service.run_all();
    ASSERT_EQ(results.size(), 3u) << threads << " threads";

    EXPECT_EQ(results[0].outcome, JobOutcome::kCompleted) << threads << " threads";
    EXPECT_EQ(results[0].run.state, expected_first.state) << threads << " threads";
    EXPECT_EQ(results[0].run.stats, expected_first.stats) << threads << " threads";

    EXPECT_EQ(results[1].outcome, JobOutcome::kTrapped) << threads << " threads";
    EXPECT_FALSE(results[1].error.empty()) << threads << " threads";

    EXPECT_EQ(results[2].outcome, JobOutcome::kCompleted) << threads << " threads";
    EXPECT_EQ(results[2].run.state, expected_third.state) << threads << " threads";
    EXPECT_EQ(results[2].run.stats, expected_third.stats) << threads << " threads";
  }
}

TEST(SimulationService, NullImageRejectedAtAdd) {
  SimulationService service(1);
  EXPECT_THROW(service.add(std::shared_ptr<const DecodedImage>{}, EngineKind::kPacked),
               std::invalid_argument);
}

TEST(SimulationService, MismatchedKindRejectedAtAdd) {
  SimulationService service(1);
  EXPECT_THROW(service.add(decode(isa::assemble(batch_programs()[0])), EngineKind::kRv32),
               std::invalid_argument);
}

TEST(SimulationService, TranslatedBenchmarkBatchAcrossKinds) {
  // The paper's evaluation loop as one batch: all four translated
  // benchmarks, each on the packed and pipeline engines, scheduled wide.
  xlat::SoftwareFramework framework;
  SimulationService service(0);
  std::vector<std::shared_ptr<const DecodedImage>> images;
  for (const core::BenchmarkSources* bench : core::all_benchmarks()) {
    images.push_back(decode(framework.translate(rv32::assemble_rv32(bench->rv32)).program));
    service.add(images.back(), EngineKind::kPacked);
    service.add(images.back(), EngineKind::kPipeline);
  }
  const std::vector<JobResult> results = service.run_all();
  ASSERT_EQ(results.size(), images.size() * 2);
  for (std::size_t b = 0; b < images.size(); ++b) {
    const RunResult& packed = results[2 * b].run;
    const RunResult& pipeline = results[2 * b + 1].run;
    EXPECT_EQ(packed.halt, HaltReason::kHalted);
    EXPECT_EQ(pipeline.halt, HaltReason::kHalted);
    // Functional and cycle-accurate models agree architecturally.
    EXPECT_EQ(packed.state.art9().trf, pipeline.state.art9().trf);
    EXPECT_EQ(packed.stats.instructions, pipeline.stats.instructions);
    EXPECT_GE(pipeline.stats.cycles, pipeline.stats.instructions);
  }
}

TEST(SimulationService, IntrospectionStartsAtZero) {
  SimulationService service(2);
  EXPECT_EQ(service.queued(), 0u);
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_EQ(service.worker_count(), 0u);  // the pool spawns lazily
  EXPECT_EQ(service.threads(), 2u);
  EXPECT_EQ(service.submitted(), 0u);
  EXPECT_EQ(service.resolved(), 0u);
  for (const JobOutcome outcome :
       {JobOutcome::kCompleted, JobOutcome::kTrapped, JobOutcome::kBudgetExhausted,
        JobOutcome::kDeadlineExceeded, JobOutcome::kCancelled, JobOutcome::kFaulted}) {
    EXPECT_EQ(service.outcome_count(outcome), 0u);
  }
}

TEST(SimulationService, IntrospectionCountsEveryOutcomeExactlyOnce) {
  // One job per deterministic outcome class: completed, trapped,
  // budget_exhausted, cancelled (cancelled while queued behind the rest
  // on a single worker).  After a full drain the monotone counters must
  // reconcile: submitted == resolved == sum over outcome_count, and the
  // instantaneous gauges are back to zero.
  isa::Program trap;
  trap.code.push_back(isa::Instruction{isa::Opcode::kAddi, 1, 0, ternary::kTritZ, 1});
  trap.entry = 0;

  SimulationService service(1);
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(batch_programs()[0]));
  const std::shared_ptr<const DecodedImage> spin =
      decode(isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n"));

  const JobHandle completed = service.submit(image, EngineKind::kFunctional, kBudget);
  const JobHandle trapped = service.submit(decode(trap), EngineKind::kPacked, kBudget);
  const JobHandle exhausted =
      service.submit(spin, EngineKind::kFunctional, RunOptions{1000});
  // The cancelled job spins forever on a huge budget, so whether
  // cancel() lands while it is still queued or already running (it is
  // cut at the next slice boundary), kCancelled is the only outcome.
  const JobHandle cancelled =
      service.submit(spin, EngineKind::kFunctional, RunOptions{100'000'000});
  cancelled.cancel();

  for (const JobHandle* handle : {&completed, &trapped, &exhausted, &cancelled}) {
    handle->wait();
  }

  EXPECT_EQ(service.submitted(), 4u);
  EXPECT_EQ(service.resolved(), 4u);
  EXPECT_EQ(service.queued(), 0u);
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_EQ(service.worker_count(), 1u);

  EXPECT_EQ(service.outcome_count(JobOutcome::kCompleted), 1u);
  EXPECT_EQ(service.outcome_count(JobOutcome::kTrapped), 1u);
  EXPECT_EQ(service.outcome_count(JobOutcome::kBudgetExhausted), 1u);
  EXPECT_EQ(service.outcome_count(JobOutcome::kCancelled), 1u);
  uint64_t total = 0;
  for (const JobOutcome outcome :
       {JobOutcome::kCompleted, JobOutcome::kTrapped, JobOutcome::kBudgetExhausted,
        JobOutcome::kDeadlineExceeded, JobOutcome::kCancelled, JobOutcome::kFaulted}) {
    total += service.outcome_count(outcome);
  }
  EXPECT_EQ(total, service.resolved());
}

TEST(SimulationService, IntrospectionCountersSurviveWideBatches) {
  // The counters are lock-free and shared with every JobState; a wide
  // threaded batch must still reconcile exactly once drained.
  SimulationService service(4);
  add_mixed_batch(service);
  const std::vector<JobResult> results = service.run_all();
  EXPECT_EQ(service.submitted(), results.size());
  EXPECT_EQ(service.resolved(), results.size());
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_LE(service.worker_count(), 4u);
  EXPECT_GE(service.worker_count(), 1u);
  uint64_t total = 0;
  for (const JobOutcome outcome :
       {JobOutcome::kCompleted, JobOutcome::kTrapped, JobOutcome::kBudgetExhausted,
        JobOutcome::kDeadlineExceeded, JobOutcome::kCancelled, JobOutcome::kFaulted}) {
    total += service.outcome_count(outcome);
  }
  EXPECT_EQ(total, results.size());
}

}  // namespace
}  // namespace art9::sim
