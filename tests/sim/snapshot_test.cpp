// Snapshot/restore suite: freeze a run mid-flight on engine kind A,
// serialize, deserialize, resume on kind B, and demand the final state
// be identical to never having been interrupted — for every (A, B) pair
// of each ISA, through the blob format of sim/snapshot.hpp.
//
// Also locks the format itself: serialize -> deserialize is an exact
// round trip (access counters included), blobs are canonical (equal
// states produce identical bytes), and every class of malformed blob is
// rejected with a SimError naming the violation.
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"

namespace art9::sim {
namespace {

/// ART-9 workload with memory traffic, a loop and a clean halt: long
/// enough that a budget-7 split lands strictly mid-run on every kind.
const char* const kArt9Source = R"(
  LIMM T1, 4
  LIMM T2, -9000
  LIMM T4, 0
loop:
  STORE T1, 0(T2)
  LOAD  T3, 0(T2)
  ADD   T4, T3
  ADDI  T2, 3
  ADDI  T1, -1
  MV    T5, T1
  COMP  T5, T0
  BNE   T5, 0, loop
  HALT
)";

/// rv32 mirror: RAM traffic, a loop, an EBREAK halt.
const char* const kRv32Source = R"(
  li   a0, 5
  li   a1, 64
loop:
  sw   a0, 0(a1)
  lw   a2, 0(a1)
  add  a3, a3, a2
  addi a1, a1, 4
  addi a0, a0, -1
  bne  a0, zero, loop
  ebreak
)";

constexpr uint64_t kSplitBudget = 7;
constexpr uint64_t kRunBudget = 10'000;

/// True when the two kinds share full access-counter accounting: the
/// three functional kinds are bit-identical including TDM counters, as
/// are the two pipeline datapaths — but a pipeline's wrong-path and
/// per-stage accesses legitimately differ from the functional models'.
bool same_counter_class(EngineKind a, EngineKind b) {
  return is_cycle_accurate(a) == is_cycle_accurate(b);
}

void expect_same_art9_architecture(const ArchState& got, const ArchState& want,
                                   bool counters_too) {
  EXPECT_EQ(got.trf, want.trf);
  EXPECT_EQ(got.pc, want.pc);
  if (counters_too) {
    EXPECT_EQ(got.tdm, want.tdm);  // contents *and* counters
    return;
  }
  for (int64_t a = -ternary::Word9::kMaxValue; a <= ternary::Word9::kMaxValue; ++a) {
    if (got.tdm.peek(a) != want.tdm.peek(a)) FAIL() << "TDM mismatch at address " << a;
  }
}

/// Re-stamps the trailing FNV-1a checksum after a deliberate edit, so
/// corruption tests exercise the *structural* validation behind it.
void restamp(std::vector<uint8_t>& blob) {
  uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i + 8 < blob.size(); ++i) {
    h ^= blob[i];
    h *= 1099511628211ULL;
  }
  for (int b = 0; b < 8; ++b) blob[blob.size() - 8 + static_cast<std::size_t>(b)] =
      static_cast<uint8_t>(h >> (8 * b));
}

void expect_rejects(const std::vector<uint8_t>& blob, const std::string& needle) {
  try {
    static_cast<void>(deserialize_snapshot(blob));
    FAIL() << "expected SimError containing \"" << needle << "\"";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

// ===========================================================================
// Resume on every (A, B) pair — ART-9.
// ===========================================================================

using KindPair = std::pair<EngineKind, EngineKind>;

std::vector<KindPair> art9_pairs() {
  std::vector<KindPair> pairs;
  for (EngineKind a : art9_engine_kinds()) {
    for (EngineKind b : art9_engine_kinds()) pairs.emplace_back(a, b);
  }
  return pairs;
}

std::vector<KindPair> rv32_pairs() {
  std::vector<KindPair> pairs;
  for (EngineKind a : rv32_engine_kinds()) {
    for (EngineKind b : rv32_engine_kinds()) pairs.emplace_back(a, b);
  }
  return pairs;
}

std::string pair_name(const ::testing::TestParamInfo<KindPair>& info) {
  return std::string(engine_kind_name(info.param.first)) + "_to_" +
         std::string(engine_kind_name(info.param.second));
}

class Art9SnapshotResume : public ::testing::TestWithParam<KindPair> {};

TEST_P(Art9SnapshotResume, MidRunSnapshotResumesBitIdentically) {
  const auto [a, b] = GetParam();
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(kArt9Source));

  // Kind A runs a short budget, checkpoints at the next instruction
  // boundary, and the checkpoint travels through the byte format.
  std::unique_ptr<Engine> source = make_engine(a, image);
  ASSERT_EQ(source->run({kSplitBudget}).halt, HaltReason::kMaxCycles);
  const MachineState snap = source->checkpoint();
  EXPECT_NE(snap.art9().pc, image->program().entry);  // genuinely mid-run
  const MachineState revived = deserialize_snapshot(serialize_snapshot(snap));
  EXPECT_EQ(revived, snap);

  // Kind B resumes from the blob and runs to halt...
  std::unique_ptr<Engine> resumed = make_engine(b, image, revived);
  ASSERT_EQ(resumed->run({kRunBudget}).halt, HaltReason::kHalted);

  // ...and must land exactly where an uninterrupted kind-A run lands
  // (checkpoint() normalizes the pipeline kinds' halt PC to the shared
  // rest-on-halt convention).
  std::unique_ptr<Engine> uninterrupted = make_engine(a, image);
  ASSERT_EQ(uninterrupted->run({kRunBudget}).halt, HaltReason::kHalted);
  expect_same_art9_architecture(resumed->checkpoint().art9(), uninterrupted->checkpoint().art9(),
                                same_counter_class(a, b));
}

TEST_P(Art9SnapshotResume, CheckpointLeavesTheSourceEngineConsistent) {
  // checkpoint() drains and self-restores: the source engine keeps
  // running afterwards and still reaches the exact uninterrupted end
  // state of its own kind.
  const auto [a, b] = GetParam();
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(kArt9Source));
  std::unique_ptr<Engine> interrupted = make_engine(a, image);
  static_cast<void>(interrupted->run({kSplitBudget}));
  static_cast<void>(interrupted->checkpoint());  // mid-run freeze, result unused
  ASSERT_EQ(interrupted->run({kRunBudget}).halt, HaltReason::kHalted);

  std::unique_ptr<Engine> uninterrupted = make_engine(a, image);
  ASSERT_EQ(uninterrupted->run({kRunBudget}).halt, HaltReason::kHalted);
  expect_same_art9_architecture(interrupted->checkpoint().art9(),
                                uninterrupted->checkpoint().art9(), true);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, Art9SnapshotResume, ::testing::ValuesIn(art9_pairs()),
                         pair_name);

// ===========================================================================
// Resume on every (A, B) pair — rv32.
// ===========================================================================

class Rv32SnapshotResume : public ::testing::TestWithParam<KindPair> {};

TEST_P(Rv32SnapshotResume, MidRunSnapshotResumesBitIdentically) {
  const auto [a, b] = GetParam();
  const std::shared_ptr<const rv32::Rv32DecodedImage> image =
      rv32::decode(rv32::assemble_rv32(kRv32Source));
  // A small RAM keeps the blobs small; the snapshot carries the size.
  EngineOptions options;
  options.rv32_ram_bytes = 4096;

  std::unique_ptr<Engine> source = make_engine(a, image, options);
  ASSERT_EQ(source->run({kSplitBudget}).halt, HaltReason::kMaxCycles);
  const MachineState snap = source->checkpoint();
  const MachineState revived = deserialize_snapshot(serialize_snapshot(snap));
  EXPECT_EQ(revived, snap);

  // Note: no EngineOptions on resume — the snapshot's RAM size must win.
  std::unique_ptr<Engine> resumed = make_engine(b, image, revived);
  ASSERT_EQ(resumed->run({kRunBudget}).halt, HaltReason::kHalted);

  std::unique_ptr<Engine> uninterrupted = make_engine(a, image, options);
  ASSERT_EQ(uninterrupted->run({kRunBudget}).halt, HaltReason::kHalted);
  EXPECT_EQ(resumed->state(), uninterrupted->state());  // full Rv32ArchState ==
}

INSTANTIATE_TEST_SUITE_P(AllPairs, Rv32SnapshotResume, ::testing::ValuesIn(rv32_pairs()),
                         pair_name);

// ===========================================================================
// The byte format.
// ===========================================================================

MachineState sample_art9_state() {
  std::unique_ptr<Engine> engine = make_engine(EngineKind::kFunctional,
                                               isa::assemble(kArt9Source));
  static_cast<void>(engine->run({11}));
  return engine->state();
}

MachineState sample_rv32_state() {
  EngineOptions options;
  options.rv32_ram_bytes = 256;
  std::unique_ptr<Engine> engine =
      make_engine(EngineKind::kRv32, rv32::assemble_rv32(kRv32Source), options);
  static_cast<void>(engine->run({11}));
  return engine->state();
}

TEST(Snapshot, RoundTripsBothIsas) {
  for (const MachineState& state : {sample_art9_state(), sample_rv32_state()}) {
    const std::vector<uint8_t> blob = serialize_snapshot(state);
    EXPECT_EQ(deserialize_snapshot(blob), state);
    // Canonical: re-serializing the parsed state reproduces the bytes.
    EXPECT_EQ(serialize_snapshot(deserialize_snapshot(blob)), blob);
  }
}

TEST(Snapshot, RvalueViewsOutliveTheTemporary) {
  // Regression for a fuzzer-caught use-after-free: binding a reference to
  // `engine->checkpoint().art9()` used to dangle into the destroyed
  // temporary MachineState.  The accessors are now ref-qualified — rvalue
  // access moves the view out, so lifetime extension keeps it valid.
  const ArchState& art9_view = sample_art9_state().art9();
  EXPECT_EQ(art9_view, sample_art9_state().art9());
  const rv32::Rv32ArchState& rv32_view = sample_rv32_state().rv32();
  EXPECT_EQ(rv32_view, sample_rv32_state().rv32());
  // Wrong-ISA access throws on rvalues exactly as on lvalues.
  EXPECT_THROW(static_cast<void>(sample_art9_state().rv32()), SimError);
  EXPECT_THROW(static_cast<void>(sample_rv32_state().art9()), SimError);
}

TEST(Snapshot, CarriesAccessCounters) {
  const MachineState state = sample_art9_state();
  const MachineState back = deserialize_snapshot(serialize_snapshot(state));
  EXPECT_GT(state.art9().tdm.reads(), 0u);
  EXPECT_EQ(back.art9().tdm.reads(), state.art9().tdm.reads());
  EXPECT_EQ(back.art9().tdm.writes(), state.art9().tdm.writes());
}

TEST(Snapshot, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/art9_snapshot_test.snap";
  const MachineState state = sample_art9_state();
  save_snapshot_file(path, state);
  EXPECT_EQ(load_snapshot_file(path), state);
  EXPECT_THROW(static_cast<void>(load_snapshot_file(path + ".does-not-exist")), SimError);
}

TEST(Snapshot, RejectsCorruptedBlobs) {
  std::vector<uint8_t> blob = serialize_snapshot(sample_art9_state());

  // Any bit flip without a matching re-stamp fails the checksum.
  std::vector<uint8_t> flipped = blob;
  flipped[flipped.size() / 2] ^= 0x40;
  expect_rejects(flipped, "checksum mismatch");

  // Truncation below the header floor.
  expect_rejects(std::vector<uint8_t>(blob.begin(), blob.begin() + 5), "too short");

  // Truncated payload (checksum re-stamped so the structural check fires).
  std::vector<uint8_t> cut(blob.begin(), blob.end() - 10);
  cut.resize(cut.size() + 8);  // fresh checksum slot
  restamp(cut);
  expect_rejects(cut, "truncated");

  // Bad magic.
  std::vector<uint8_t> magic = blob;
  magic[0] = 'X';
  restamp(magic);
  expect_rejects(magic, "bad magic");

  // Unknown version.
  std::vector<uint8_t> version = blob;
  version[8] = 0x7F;
  restamp(version);
  expect_rejects(version, "unsupported version");

  // Unknown ISA tag.
  std::vector<uint8_t> isa = blob;
  isa[10] = 9;
  restamp(isa);
  expect_rejects(isa, "unknown ISA tag");

  // Register value outside the 9-trit range (first register's i16 sits
  // right after the header + 8-byte pc).
  std::vector<uint8_t> reg = blob;
  reg[19] = 0x20;
  reg[20] = 0x4E;  // 20000 LE
  restamp(reg);
  expect_rejects(reg, "outside the 9-trit range");

  // Trailing garbage between payload and checksum.
  std::vector<uint8_t> padded = blob;
  padded.insert(padded.end() - 8, 0x00);
  restamp(padded);
  expect_rejects(padded, "trailing");
}

TEST(Snapshot, RejectsNonzeroX0) {
  std::vector<uint8_t> blob = serialize_snapshot(sample_rv32_state());
  blob[11 + 4] = 1;  // x0's low byte: header(11) + u32 pc
  restamp(blob);
  expect_rejects(blob, "x0");
}

// ===========================================================================
// ISA mismatch through the facade.
// ===========================================================================

TEST(Snapshot, RestoreRejectsIsaMismatch) {
  std::unique_ptr<Engine> art9 = make_engine(EngineKind::kPacked, isa::assemble("HALT\n"));
  EXPECT_THROW(art9->restore(sample_rv32_state()), SimError);
  std::unique_ptr<Engine> rv = make_engine(EngineKind::kRv32Packed,
                                           rv32::assemble_rv32("ebreak\n"));
  EXPECT_THROW(rv->restore(sample_art9_state()), SimError);

  // The resume factory propagates the same contract.
  EXPECT_THROW(static_cast<void>(make_engine(EngineKind::kPipeline,
                                             decode(isa::assemble("HALT\n")),
                                             sample_rv32_state())),
               SimError);
}

TEST(Snapshot, ResumeFactoryDispatchesOnTheImageVariant) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(kArt9Source));
  std::unique_ptr<Engine> source = make_engine(EngineKind::kFunctional, image);
  static_cast<void>(source->run({kSplitBudget}));
  const MachineState snap = source->checkpoint();
  std::unique_ptr<Engine> resumed = make_engine(EngineKind::kLazy, EngineImage{image}, snap);
  EXPECT_EQ(resumed->state(), snap);
}

}  // namespace
}  // namespace art9::sim
