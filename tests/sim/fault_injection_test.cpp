// The deterministic fault-injection layer: seeded plans are
// bit-reproducible, faults fire at exactly the planned cumulative step,
// the decorator stays engine-conformant up to the injected faults, and
// checkpoint corruption flips exactly one seed-chosen bit.
#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "isa/assembler.hpp"
#include "sim/snapshot.hpp"

namespace art9::sim {
namespace {

std::shared_ptr<const DecodedImage> spin_image() {
  static const std::shared_ptr<const DecodedImage> kImage =
      decode(isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n"));
  return kImage;
}

std::shared_ptr<const DecodedImage> halting_image() {
  static const std::shared_ptr<const DecodedImage> kImage = decode(isa::assemble(R"(
        LIMM T1, 20
      loop:
        ADDI T1, -1
        COMP T2, T1
        BNE  T2, 0, loop
        HALT
      )"));
  return kImage;
}

TEST(FaultPlan, SeededPlansAreReproducible) {
  const FaultPlan a = FaultPlan::seeded(42, 10'000);
  const FaultPlan b = FaultPlan::seeded(42, 10'000);
  EXPECT_EQ(a.throw_at_step, b.throw_at_step);
  EXPECT_GE(a.throw_at_step, 1u);
  EXPECT_LE(a.throw_at_step, 10'000u);
  // Different seeds almost surely land elsewhere (locked for these two).
  EXPECT_NE(FaultPlan::seeded(43, 10'000).throw_at_step, a.throw_at_step);
}

TEST(FaultInjection, ThrowsAtExactlyThePlannedStep) {
  FaultPlan plan;
  plan.throw_at_step = 1'000;
  auto state = std::make_shared<FaultState>(plan);
  std::unique_ptr<Engine> engine =
      with_fault_injection(make_engine(EngineKind::kFunctional, spin_image()), state);

  // A budget short of the fault point runs clean...
  const SimStats before = engine->run_stats({999});
  EXPECT_EQ(before.cycles, 999u);
  EXPECT_EQ(state->faults_fired(), 0u);

  // ...and the very next step fires, regardless of the requested budget.
  EXPECT_THROW(engine->run_stats({1'000'000}), TransientFault);
  EXPECT_EQ(state->steps_seen(), 1'000u);
  EXPECT_EQ(state->faults_fired(), 1u);
}

TEST(FaultInjection, FiresOnStepPathToo) {
  FaultPlan plan;
  plan.throw_at_step = 3;
  auto state = std::make_shared<FaultState>(plan);
  std::unique_ptr<Engine> engine =
      with_fault_injection(make_engine(EngineKind::kFunctional, spin_image()), state);
  EXPECT_TRUE(engine->step());
  EXPECT_TRUE(engine->step());
  EXPECT_THROW(engine->step(), TransientFault);
}

TEST(FaultInjection, ThrowCountReArmsAtMultiples) {
  FaultPlan plan;
  plan.throw_at_step = 100;
  plan.throw_count = 2;
  auto state = std::make_shared<FaultState>(plan);
  std::unique_ptr<Engine> engine =
      with_fault_injection(make_engine(EngineKind::kFunctional, spin_image()), state);
  EXPECT_THROW(engine->run_stats({1'000'000}), TransientFault);
  EXPECT_EQ(state->steps_seen(), 100u);
  EXPECT_THROW(engine->run_stats({1'000'000}), TransientFault);  // re-armed at 200
  EXPECT_EQ(state->steps_seen(), 200u);
  // Exhausted: the engine now runs unimpeded.
  const SimStats after = engine->run_stats({500});
  EXPECT_EQ(after.cycles, 500u);
  EXPECT_EQ(state->faults_fired(), 2u);
}

TEST(FaultInjection, StateSurvivesEngineRecreation) {
  // The transient contract: a fired fault stays fired when the service
  // rebuilds the engine around the same FaultState.
  FaultPlan plan;
  plan.throw_at_step = 50;
  auto state = std::make_shared<FaultState>(plan);
  {
    std::unique_ptr<Engine> engine =
        with_fault_injection(make_engine(EngineKind::kFunctional, spin_image()), state);
    EXPECT_THROW(engine->run_stats({1'000}), TransientFault);
  }
  std::unique_ptr<Engine> resumed =
      with_fault_injection(make_engine(EngineKind::kFunctional, spin_image()), state);
  const SimStats stats = resumed->run_stats({200});
  EXPECT_EQ(stats.cycles, 200u);  // no second fault
  EXPECT_EQ(state->faults_fired(), 1u);
}

TEST(FaultInjection, FaultFreePlanIsTransparent) {
  // With no events armed, the decorator must not perturb results.
  std::unique_ptr<Engine> clean = make_engine(EngineKind::kFunctional, halting_image());
  const RunResult expected = clean->run();

  auto state = std::make_shared<FaultState>(FaultPlan{});
  std::unique_ptr<Engine> wrapped =
      with_fault_injection(make_engine(EngineKind::kFunctional, halting_image()), state);
  const RunResult actual = wrapped->run();
  EXPECT_EQ(actual.state, expected.state);
  EXPECT_EQ(actual.stats, expected.stats);
  EXPECT_EQ(actual.halt, HaltReason::kHalted);
}

TEST(FaultInjection, BudgetExhaustionStillReportsMaxCycles) {
  auto state = std::make_shared<FaultState>(FaultPlan{});
  std::unique_ptr<Engine> engine =
      with_fault_injection(make_engine(EngineKind::kFunctional, spin_image()), state);
  const SimStats stats = engine->run_stats({123});
  EXPECT_EQ(stats.cycles, 123u);
  EXPECT_EQ(stats.halt, HaltReason::kMaxCycles);
}

TEST(FaultInjection, MutateCheckpointFlipsExactlyOneBit) {
  FaultPlan plan;
  plan.corrupt_checkpoint = 2;
  plan.seed = 99;
  FaultState state(plan);

  std::unique_ptr<Engine> engine = make_engine(EngineKind::kFunctional, halting_image());
  (void)engine->run_stats({10});
  const std::vector<uint8_t> blob = serialize_snapshot(engine->checkpoint());

  std::vector<uint8_t> first = blob;
  state.mutate_checkpoint(first);
  EXPECT_EQ(first, blob);  // blob #1 untouched

  std::vector<uint8_t> second = blob;
  state.mutate_checkpoint(second);
  ASSERT_EQ(second.size(), blob.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < blob.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(blob[i] ^ second[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_THROW(static_cast<void>(deserialize_snapshot(second)), SimError);

  // Reproducible: the same plan flips the same bit.
  FaultState replay(plan);
  std::vector<uint8_t> again = blob;
  replay.mutate_checkpoint(again);  // #1
  std::vector<uint8_t> again2 = blob;
  replay.mutate_checkpoint(again2);  // #2
  EXPECT_EQ(again2, second);
}

TEST(FaultInjection, NullArgumentsRejected) {
  auto state = std::make_shared<FaultState>(FaultPlan{});
  EXPECT_THROW(static_cast<void>(with_fault_injection(nullptr, state)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(with_fault_injection(
                   make_engine(EngineKind::kFunctional, spin_image()), nullptr)),
               std::invalid_argument);
}

}  // namespace
}  // namespace art9::sim
