// Differential property test: the cycle-accurate pipeline must produce the
// exact architectural state of the functional golden model on randomly
// generated programs, under every ablation configuration.
#include <gtest/gtest.h>

#include <random>

#include "core/progen.hpp"
#include "sim/functional_sim.hpp"
#include "sim/pipeline.hpp"

namespace art9::sim {
namespace {

void expect_same_state(const ArchState& pipeline, const ArchState& functional, uint64_t seed) {
  EXPECT_EQ(pipeline.trf, functional.trf) << "seed=" << seed;
  for (int64_t row = ternary::Word9::kMinValue; row <= ternary::Word9::kMaxValue; ++row) {
    if (pipeline.tdm.peek(row) != functional.tdm.peek(row)) {
      FAIL() << "TDM mismatch at address " << row << " (seed=" << seed << "): pipeline="
             << pipeline.tdm.peek(row).to_int() << " functional="
             << functional.tdm.peek(row).to_int();
    }
  }
}

struct ConfigCase {
  const char* name;
  PipelineConfig config;
};

std::vector<ConfigCase> all_configs() {
  std::vector<ConfigCase> cases;
  cases.push_back({"baseline", {}});
  PipelineConfig no_fwd;
  no_fwd.ex_forwarding = false;
  cases.push_back({"no_ex_forwarding", no_fwd});
  PipelineConfig no_id_fwd;
  no_id_fwd.id_forwarding = false;
  cases.push_back({"no_id_forwarding", no_id_fwd});
  PipelineConfig branch_ex;
  branch_ex.branch_in_id = false;
  cases.push_back({"branch_in_ex", branch_ex});
  PipelineConfig sync_rf;
  sync_rf.regfile_write_through = false;
  cases.push_back({"sync_regfile", sync_rf});
  PipelineConfig everything_off;
  everything_off.ex_forwarding = false;
  everything_off.id_forwarding = false;
  everything_off.branch_in_id = false;
  everything_off.regfile_write_through = false;
  cases.push_back({"all_ablations", everything_off});
  return cases;
}

class PipelineDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineDifferential, RandomProgramsMatchGoldenModel) {
  const std::size_t config_index = GetParam();
  const ConfigCase cc = all_configs()[config_index];
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    std::mt19937_64 rng(seed * 7919);
    const isa::Program program = core::generate_art9_program(rng);

    FunctionalSimulator golden(program);
    const SimStats golden_stats = golden.run(2'000'000);
    ASSERT_EQ(golden_stats.halt, HaltReason::kHalted) << "seed=" << seed;

    PipelineSimulator pipe(program, cc.config);
    const SimStats pipe_stats = pipe.run();
    ASSERT_EQ(pipe_stats.halt, HaltReason::kHalted) << "seed=" << seed << " cfg=" << cc.name;

    expect_same_state(pipe.state(), golden.state(), seed);
    // Retired-instruction counts agree (bubbles are not retired).
    EXPECT_EQ(pipe_stats.instructions, golden_stats.instructions)
        << "seed=" << seed << " cfg=" << cc.name;
    // Pipeline fill plus stalls can only add cycles.
    EXPECT_GE(pipe_stats.cycles, golden_stats.instructions + 4) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PipelineDifferential,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           return std::string(all_configs()[param_info.param].name);
                         });

TEST(PipelineDifferential, LoopHeavyPrograms) {
  core::Art9GenOptions options;
  options.min_length = 60;
  options.max_length = 200;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(seed * 104729);
    const isa::Program program = core::generate_art9_program(rng, options);
    FunctionalSimulator golden(program);
    ASSERT_EQ(golden.run(2'000'000).halt, HaltReason::kHalted);
    PipelineSimulator pipe(program);
    ASSERT_EQ(pipe.run().halt, HaltReason::kHalted);
    expect_same_state(pipe.state(), golden.state(), seed);
  }
}

}  // namespace
}  // namespace art9::sim
