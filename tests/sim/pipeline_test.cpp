// Cycle-accurate pipeline: exact cycle/stall/flush accounting for the
// hazard cases of paper §IV-B, plus the ablation configurations.
//
// Timing reference: with no stalls, instruction i (0-based) retires at
// cycle i+5, so a program of N instructions (halt included) costs N+4
// cycles; every load-use interlock adds 1, every taken branch/jump adds 1
// (2 when branches resolve in EX).
#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace art9::sim {
namespace {

using isa::assemble;

PipelineSimulator run(const std::string& source, PipelineConfig config = {}) {
  PipelineSimulator sim(assemble(source), config);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.halt, HaltReason::kHalted);
  return sim;
}

TEST(Pipeline, StraightLineCycleCount) {
  auto sim = run("ADDI T1, 1\nADDI T2, 2\nADDI T3, 3\nHALT\n");
  EXPECT_EQ(sim.stats().cycles, 8u);  // 4 instructions + 4 fill
  EXPECT_EQ(sim.stats().instructions, 3u);
  EXPECT_EQ(sim.stats().stall_load_use, 0u);
  EXPECT_EQ(sim.stats().flush_taken_branch, 0u);
  EXPECT_EQ(sim.reg_int(1), 1);
}

TEST(Pipeline, ForwardingCoversAluChains) {
  auto sim = run(R"(
    ADDI T1, 5
    MV   T2, T1      ; distance 1 -> EX/MEM bypass
    ADD  T2, T1      ; distances 1 and 2
    MV   T3, T2      ; distance 1
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 10);
  EXPECT_EQ(sim.reg_int(3), 10);
  EXPECT_EQ(sim.stats().cycles, 9u);  // no stalls at all
  EXPECT_EQ(sim.stats().stall_raw, 0u);
}

TEST(Pipeline, LoadUseStallsOneCycle) {
  auto sim = run(R"(
    LIMM T1, 60
    STORE T1, 0(T1)
    LOAD T2, 0(T1)
    ADD  T2, T2      ; load-use
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 120);
  EXPECT_EQ(sim.stats().stall_load_use, 1u);
  EXPECT_EQ(sim.stats().cycles, 6u + 4u + 1u);
}

TEST(Pipeline, LoadThenIndependentOpNoStall) {
  auto sim = run(R"(
    LIMM T1, 60
    STORE T1, 0(T1)
    LOAD T2, 0(T1)
    ADDI T3, 5       ; independent
    ADD  T2, T2      ; distance 2 from the load -> MEM/WB bypass
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 120);
  EXPECT_EQ(sim.stats().stall_load_use, 0u);
  EXPECT_EQ(sim.stats().cycles, 7u + 4u);
}

TEST(Pipeline, TakenBranchCostsOneBubble) {
  auto sim = run(R"(
    ADDI T1, 1
    BEQ  T1, +, skip
    ADDI T2, 5
skip:
    ADDI T3, 7
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 0);
  EXPECT_EQ(sim.reg_int(3), 7);
  EXPECT_EQ(sim.stats().flush_taken_branch, 1u);
  EXPECT_EQ(sim.stats().instructions, 3u);
  EXPECT_EQ(sim.stats().cycles, 4u + 4u + 1u);  // 4 executed + fill + 1 bubble
}

TEST(Pipeline, NotTakenBranchIsFree) {
  auto sim = run(R"(
    ADDI T1, 1
    BEQ  T1, -, skip
    ADDI T2, 5
skip:
    ADDI T3, 7
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 5);
  EXPECT_EQ(sim.stats().flush_taken_branch, 0u);
  EXPECT_EQ(sim.stats().cycles, 5u + 4u);
}

TEST(Pipeline, CompBeforeBranchNeedsNoStall) {
  // The one-trit EX->ID condition forwarding (paper §IV-B).
  auto sim = run(R"(
    LIMM T1, 5
    LIMM T2, 9
    MV   T3, T1
    COMP T3, T2
    BEQ  T3, -, less
    ADDI T4, 1
less:
    HALT
)");
  EXPECT_EQ(sim.reg_int(4), 0);  // branch taken (5 < 9)
  EXPECT_EQ(sim.stats().stall_branch_hazard, 0u);
  EXPECT_EQ(sim.stats().flush_taken_branch, 1u);
  EXPECT_EQ(sim.stats().cycles, 8u + 4u + 1u);  // 8 executed + fill + bubble
}

TEST(Pipeline, LoadToBranchStallsTwoCycles) {
  auto sim = run(R"(
    LIMM T1, 60
    STORE T1, 0(T1)
    LOAD  T2, 0(T1)
    BEQ   T2, 0, next   ; 60's LST is 0 -> taken
next:
    HALT
)");
  EXPECT_EQ(sim.stats().stall_branch_hazard, 2u);
  EXPECT_EQ(sim.stats().flush_taken_branch, 1u);
  EXPECT_EQ(sim.stats().cycles, 6u + 4u + 2u + 1u);
}

TEST(Pipeline, JalrBaseHazardStallsOneCycle) {
  // No 9-trit EX->ID bypass for the JALR base: a distance-1 ALU producer
  // costs one stall (resolved from EX/MEM the next cycle).
  auto sim = run(R"(
    LIMM T1, 6
    ADDI T1, 1
    JALR T0, T1, 0
    ADDI T2, 3
    NOP
    NOP
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 0);  // jumped over
  EXPECT_EQ(sim.reg_int(0), 4);  // link = JALR address + 1
  EXPECT_EQ(sim.stats().stall_branch_hazard, 1u);
  EXPECT_EQ(sim.stats().flush_taken_branch, 1u);
  EXPECT_EQ(sim.stats().cycles, 5u + 4u + 1u + 1u);
}

TEST(Pipeline, JalAlwaysFlushesOnce) {
  auto sim = run("JAL T1, target\nNOP\ntarget: HALT\n");
  EXPECT_EQ(sim.reg_int(1), 1);
  EXPECT_EQ(sim.stats().flush_taken_branch, 1u);
  EXPECT_EQ(sim.stats().cycles, 2u + 4u + 1u);
}

TEST(Pipeline, StoreDataForwarding) {
  auto sim = run(R"(
    LIMM T1, 50
    ADDI T2, 7
    STORE T2, 0(T1)  ; store data from a distance-1 ALU producer
    LOAD T3, 0(T1)
    HALT
)");
  EXPECT_EQ(sim.reg_int(3), 7);
  EXPECT_EQ(sim.stats().stall_load_use, 0u);
  EXPECT_EQ(sim.stats().cycles, 6u + 4u);
}

TEST(Pipeline, BackwardLoopMatchesFunctionalResult) {
  auto sim = run(R"(
    LIMM T1, 10
    LIMM T2, 0
    LIMM T3, 0
loop:
    ADD  T2, T1
    ADDI T1, -1
    MV   T4, T1
    COMP T4, T3
    BNE  T4, 0, loop
    HALT
)");
  EXPECT_EQ(sim.reg_int(2), 55);
  // 9 taken branches (the final iteration falls through).
  EXPECT_EQ(sim.stats().flush_taken_branch, 9u);
}

// --- ablation configurations -------------------------------------------

TEST(PipelineAblation, NoForwardingStallsRawHazards) {
  PipelineConfig config;
  config.ex_forwarding = false;
  auto sim = run(R"(
    ADDI T1, 5
    MV   T2, T1
    ADD  T2, T1
    MV   T3, T2
    HALT
)", config);
  EXPECT_EQ(sim.reg_int(3), 10);  // still correct, just slower
  EXPECT_EQ(sim.stats().stall_raw, 6u);  // 2 stalls per distance-1 dependence
  EXPECT_EQ(sim.stats().cycles, 9u + 6u);
}

TEST(PipelineAblation, BranchInExCostsTwoBubbles) {
  PipelineConfig config;
  config.branch_in_id = false;
  auto sim = run(R"(
    ADDI T1, 1
    BEQ  T1, +, skip
    ADDI T2, 5
skip:
    ADDI T3, 7
    HALT
)", config);
  EXPECT_EQ(sim.reg_int(2), 0);
  EXPECT_EQ(sim.reg_int(3), 7);
  EXPECT_EQ(sim.stats().flush_taken_branch, 2u);
  EXPECT_EQ(sim.stats().cycles, 4u + 4u + 2u);
}

TEST(PipelineAblation, NoWriteThroughInterlocksDistanceThree) {
  PipelineConfig config;
  config.regfile_write_through = false;
  auto sim = run(R"(
    ADDI T1, 5
    NOP
    NOP
    MV   T2, T1     ; distance 3: the WB write lands after the ID read
    HALT
)", config);
  EXPECT_EQ(sim.reg_int(2), 5);
  EXPECT_EQ(sim.stats().stall_raw, 1u);
  EXPECT_EQ(sim.stats().cycles, 10u);
}

TEST(Pipeline, HaltWithoutWritingLink) {
  auto sim = run("LIMM T0, 7\nHALT\n");
  EXPECT_EQ(sim.reg_int(0), 7);  // HALT (JAL T0,0) must not clobber T0
}

TEST(Pipeline, MaxCycleBudget) {
  PipelineConfig config;
  config.max_cycles = 50;
  PipelineSimulator sim(assemble("loop: JAL T1, loop2\nloop2: JAL T1, loop\nHALT\n"), config);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.halt, HaltReason::kMaxCycles);
  EXPECT_EQ(stats.cycles, 50u);
}

}  // namespace
}  // namespace art9::sim
