// BatchRunner must be observationally identical to standalone
// FunctionalSimulator runs: bit-identical ArchState (registers, memory
// contents *and* access counters, PC) plus equal halt reasons and step
// counts, whether each job decodes its own program or shares one image.
#include "sim/batch_runner.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/functional_sim.hpp"

namespace art9::sim {
namespace {

/// Eight small programs covering every instruction class: straight-line
/// arithmetic, loops, memory traffic, JALR returns, and one that never
/// halts (so kMaxCycles must round-trip too).
const std::array<std::string, 8>& batch_programs() {
  static const std::array<std::string, 8> kPrograms = {
      // 0: immediate materialisation + arithmetic.
      "LIMM T1, 1234\nLIMM T2, -77\nADD T1, T2\nHALT\n",
      // 1: counted loop (backward BNE).
      R"(
        LIMM T1, 50
        LIMM T2, 0
      loop:
        ADD  T2, T1
        ADDI T1, -1
        MV   T3, T1
        COMP T3, T4
        BNE  T3, 0, loop
        HALT
      )",
      // 2: memory round trip.
      R"(
        LIMM T1, 60
        LIMM T2, 42
        STORE T2, 3(T1)
        LOAD  T3, 3(T1)
        HALT
      )",
      // 3: JAL / JALR call-and-return.
      R"(
        LIMM T5, 0
        JAL  T8, sub
        ADDI T5, 2
        HALT
      sub:
        ADDI T5, 5
        JALR T0, T8, 0
      )",
      // 4: logic ops and shifts.
      R"(
        LIMM T1, 1000
        SRI  T1, 2
        SLI  T1, 1
        LIMM T2, -481
        AND  T1, T2
        OR   T1, T2
        XOR  T1, T2
        HALT
      )",
      // 5: inverters and comparison.
      R"(
        LIMM T1, 88
        MV   T2, T1
        STI  T2, T2
        PTI  T3, T1
        NTI  T4, T1
        COMP T2, T1
        HALT
      )",
      // 6: forward branch taken.
      R"(
        LIMM T1, 1
        COMP T1, T0
        BEQ  T1, +, skip
        LIMM T7, 9841
      skip:
        ADDI T6, 4
        HALT
      )",
      // 7: never halts — both paths must hit the step budget identically.
      "loop:\n  ADDI T1, 1\n  JAL T0, loop\n",
  };
  return kPrograms;
}

constexpr uint64_t kBudget = 2'000;

TEST(BatchRunner, MatchesStandaloneRuns) {
  BatchRunner batch(kBudget);
  for (const std::string& source : batch_programs()) batch.add(isa::assemble(source));
  ASSERT_EQ(batch.size(), 8u);

  const std::vector<BatchRunner::Result> results = batch.run_all();
  ASSERT_EQ(results.size(), 8u);

  for (std::size_t i = 0; i < batch_programs().size(); ++i) {
    FunctionalSimulator standalone(isa::assemble(batch_programs()[i]));
    const SimStats stats = standalone.run(kBudget);
    EXPECT_EQ(results[i].state, standalone.state()) << "program " << i;
    EXPECT_EQ(results[i].stats, stats) << "program " << i;
    EXPECT_EQ(results[i].stats.halt, i == 7 ? HaltReason::kMaxCycles : HaltReason::kHalted)
        << "program " << i;
  }
}

TEST(BatchRunner, SharedImageMatchesPerJobDecode) {
  const isa::Program program = isa::assemble(batch_programs()[1]);

  BatchRunner batch(kBudget);
  std::shared_ptr<const DecodedImage> image = batch.add(program);
  for (int i = 0; i < 7; ++i) batch.add(image);  // 7 more runs, zero decode cost
  ASSERT_EQ(batch.size(), 8u);

  const std::vector<BatchRunner::Result> results = batch.run_all();
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].state, results[0].state) << "job " << i;
    EXPECT_EQ(results[i].stats, results[0].stats) << "job " << i;
  }

  FunctionalSimulator standalone(program);
  const SimStats stats = standalone.run(kBudget);
  EXPECT_EQ(results[0].state, standalone.state());
  EXPECT_EQ(results[0].stats, stats);
}

TEST(BatchRunner, AgreesWithLazyBaseline) {
  // The pre-decoded dispatch path vs the seed's decode-on-fetch loop:
  // same final state on the whole batch corpus.
  for (const std::string& source : batch_programs()) {
    const isa::Program program = isa::assemble(source);
    FunctionalSimulator eager(program);
    LazyFunctionalSimulator lazy(program);
    const SimStats eager_stats = eager.run(kBudget);
    const SimStats lazy_stats = lazy.run(kBudget);
    EXPECT_EQ(eager.state(), lazy.state());
    EXPECT_EQ(eager_stats, lazy_stats);
  }
}

TEST(BatchRunner, RunAllIsRepeatable) {
  BatchRunner batch(kBudget);
  batch.add(isa::assemble(batch_programs()[0]));
  const auto first = batch.run_all();
  const auto second = batch.run_all();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first[0].state, second[0].state);
  EXPECT_EQ(first[0].stats, second[0].stats);
}

}  // namespace
}  // namespace art9::sim
