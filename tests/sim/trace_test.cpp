// Pipeline tracer: stage progression, hazard events and rendering.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.hpp"
#include "sim/pipeline.hpp"

namespace art9::sim {
namespace {

std::vector<CycleTrace> trace_program(const std::string& source, PipelineConfig config = {}) {
  PipelineSimulator sim(isa::assemble(source), config);
  std::vector<CycleTrace> out;
  sim.set_tracer([&](const CycleTrace& t) { out.push_back(t); });
  sim.run();
  return out;
}

TEST(Trace, StageProgression) {
  const auto traces = trace_program("ADDI T1, 1\nADDI T2, 2\nHALT\n");
  ASSERT_EQ(traces.size(), 7u);  // 3 instructions + 4 fill cycles
  // Cycle 1: everything empty, fetching pc 0.
  EXPECT_TRUE(traces[0].fetch_active);
  EXPECT_EQ(traces[0].fetch_pc, 0);
  EXPECT_FALSE(traces[0].id().valid);
  // Instruction 0 moves ID (cycle 2) -> EX (3) -> MEM (4) -> WB (5).
  EXPECT_TRUE(traces[1].id().valid);
  EXPECT_EQ(traces[1].id().pc, 0);
  EXPECT_TRUE(traces[2].ex().valid);
  EXPECT_EQ(traces[2].ex().pc, 0);
  EXPECT_TRUE(traces[3].mem().valid);
  EXPECT_EQ(traces[3].mem().pc, 0);
  EXPECT_TRUE(traces[4].wb().valid);
  EXPECT_EQ(traces[4].wb().pc, 0);
  // The HALT (pc 2) retires on the final cycle.
  EXPECT_TRUE(traces[6].wb().valid);
  EXPECT_EQ(traces[6].wb().pc, 2);
}

TEST(Trace, LoadUseStallEvent) {
  const auto traces = trace_program(R"(
    LIMM T1, 60
    STORE T1, 0(T1)
    LOAD T2, 0(T1)
    ADD  T2, T2
    HALT
)");
  int stalls = 0;
  for (const CycleTrace& t : traces) {
    if (t.event == CycleEvent::kLoadUseStall) ++stalls;
  }
  EXPECT_EQ(stalls, 1);
}

TEST(Trace, FlushAndHaltEvents) {
  const auto traces = trace_program("JAL T1, over\nNOP\nover: HALT\n");
  bool saw_flush = false;
  bool saw_halt = false;
  for (const CycleTrace& t : traces) {
    saw_flush |= t.event == CycleEvent::kTakenBranchFlush;
    saw_halt |= t.event == CycleEvent::kHaltSeen;
  }
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_halt);
}

TEST(Trace, RawStallEventInAblationMode) {
  PipelineConfig config;
  config.ex_forwarding = false;
  const auto traces = trace_program("ADDI T1, 5\nMV T2, T1\nHALT\n", config);
  int raw = 0;
  for (const CycleTrace& t : traces) {
    if (t.event == CycleEvent::kRawStall) ++raw;
  }
  EXPECT_EQ(raw, 2);
}

TEST(Trace, Rendering) {
  const auto traces = trace_program("ADDI T1, 1\nHALT\n");
  const std::string line = render_trace(traces[1]);
  EXPECT_NE(line.find("ID 0:ADDI T1, 1"), std::string::npos);
  EXPECT_NE(line.find("IF@1"), std::string::npos);
  EXPECT_NE(line.find("EX -"), std::string::npos);
  EXPECT_STREQ(event_name(CycleEvent::kLoadUseStall), "load-use stall");
  EXPECT_STREQ(event_name(CycleEvent::kNone), "");
}

TEST(Trace, ObserverCanBeCleared) {
  PipelineSimulator sim(isa::assemble("NOP\nHALT\n"));
  int calls = 0;
  sim.set_tracer([&](const CycleTrace&) { ++calls; });
  sim.step();
  sim.set_tracer(nullptr);
  sim.run();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace art9::sim
