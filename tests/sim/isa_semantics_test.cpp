// ISA conformance: every Table-I instruction executed through the full
// stack (assembler -> encoder -> decoder -> simulator) against a host
// reference, with random operand values, on BOTH simulators.
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "isa/assembler.hpp"
#include "sim/functional_sim.hpp"
#include "sim/pipeline.hpp"
#include "ternary/arith.hpp"

namespace art9::sim {
namespace {

using ternary::Word9;

/// Host-side semantics of one R-type `OP T3, T4` (a = T3, b = T4 inputs).
struct OpCase {
  const char* mnemonic;
  std::function<int64_t(int64_t, int64_t)> reference;
};

int64_t wrap(int64_t v) { return Word9::from_int_wrapped(v).to_int(); }

const std::vector<OpCase>& op_cases() {
  static const std::vector<OpCase> kCases = {
      {"MV", [](int64_t, int64_t b) { return b; }},
      {"ADD", [](int64_t a, int64_t b) { return wrap(a + b); }},
      {"SUB", [](int64_t a, int64_t b) { return wrap(a - b); }},
      {"STI", [](int64_t, int64_t b) { return -b; }},
      {"AND",
       [](int64_t a, int64_t b) {
         return ternary::tand(Word9::from_int(a), Word9::from_int(b)).to_int();
       }},
      {"OR",
       [](int64_t a, int64_t b) {
         return ternary::tor(Word9::from_int(a), Word9::from_int(b)).to_int();
       }},
      {"XOR",
       [](int64_t a, int64_t b) {
         return ternary::txor(Word9::from_int(a), Word9::from_int(b)).to_int();
       }},
      {"PTI",
       [](int64_t, int64_t b) { return ternary::pti(Word9::from_int(b)).to_int(); }},
      {"NTI",
       [](int64_t, int64_t b) { return ternary::nti(Word9::from_int(b)).to_int(); }},
      {"COMP", [](int64_t a, int64_t b) { return static_cast<int64_t>((a > b) - (a < b)); }},
  };
  return kCases;
}

class IsaSemantics : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IsaSemantics, FullStackMatchesReferenceOnBothSimulators) {
  const OpCase& c = op_cases()[GetParam()];
  std::mt19937_64 rng(GetParam() * 31 + 5);
  std::uniform_int_distribution<int64_t> dist(-9841, 9841);
  for (int i = 0; i < 40; ++i) {
    const int64_t a = dist(rng);
    const int64_t b = dist(rng);
    const std::string source = "LIMM T3, " + std::to_string(a) + "\nLIMM T4, " +
                               std::to_string(b) + "\n" + c.mnemonic + " T3, T4\nHALT\n";
    const isa::Program program = isa::assemble(source);

    FunctionalSimulator golden(program);
    ASSERT_EQ(golden.run().halt, HaltReason::kHalted);
    EXPECT_EQ(golden.reg_int(3), c.reference(a, b)) << c.mnemonic << " " << a << ", " << b;

    PipelineSimulator pipe(program);
    ASSERT_EQ(pipe.run().halt, HaltReason::kHalted);
    EXPECT_EQ(pipe.reg_int(3), golden.reg_int(3)) << c.mnemonic << " (pipeline)";
  }
}

INSTANTIATE_TEST_SUITE_P(RTypeOps, IsaSemantics,
                         ::testing::Range<std::size_t>(0, op_cases().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& param_info) {
                           return std::string(op_cases()[param_info.param].mnemonic);
                         });

TEST(IsaSemantics, ShiftFamily) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> dist(-9841, 9841);
  for (int sh = 0; sh <= 8; ++sh) {
    const int64_t a = dist(rng);
    const std::string source = "LIMM T3, " + std::to_string(a) +
                               "\nLIMM T4, " + std::to_string(Word9::from_unsigned(sh).to_int()) +
                               "\nMV T5, T3\nSR T5, T4\nMV T6, T3\nSL T6, T4\nMV T1, T3\nSRI T1, " +
                               std::to_string(sh) + "\nMV T2, T3\nSLI T2, " + std::to_string(sh) +
                               "\nHALT\n";
    FunctionalSimulator sim(isa::assemble(source));
    ASSERT_EQ(sim.run().halt, HaltReason::kHalted);
    const Word9 w = Word9::from_int(a);
    EXPECT_EQ(sim.reg_int(5), w.shr(static_cast<std::size_t>(sh)).to_int()) << "SR " << sh;
    EXPECT_EQ(sim.reg_int(6), w.shl(static_cast<std::size_t>(sh)).to_int()) << "SL " << sh;
    EXPECT_EQ(sim.reg_int(1), sim.reg_int(5)) << "SRI == SR";
    EXPECT_EQ(sim.reg_int(2), sim.reg_int(6)) << "SLI == SL";
  }
}

TEST(IsaSemantics, ImmediateFamily) {
  std::mt19937_64 rng(8);
  std::uniform_int_distribution<int64_t> dist(-9000, 9000);
  for (int imm = -13; imm <= 13; ++imm) {
    const int64_t a = dist(rng);
    const std::string source = "LIMM T3, " + std::to_string(a) + "\nADDI T3, " +
                               std::to_string(imm) + "\nLIMM T4, " + std::to_string(a) +
                               "\nANDI T4, " + std::to_string(imm) + "\nHALT\n";
    FunctionalSimulator sim(isa::assemble(source));
    ASSERT_EQ(sim.run().halt, HaltReason::kHalted);
    EXPECT_EQ(sim.reg_int(3), wrap(a + imm));
    EXPECT_EQ(sim.reg_int(4),
              ternary::tand(Word9::from_int(a), Word9::from_int(imm)).to_int());
  }
}

TEST(IsaSemantics, LuiLiSweep) {
  for (int hi = -40; hi <= 40; hi += 7) {
    for (int lo = -121; lo <= 121; lo += 31) {
      const std::string source = "LUI T2, " + std::to_string(hi) + "\nLI T2, " +
                                 std::to_string(lo) + "\nHALT\n";
      FunctionalSimulator sim(isa::assemble(source));
      ASSERT_EQ(sim.run().halt, HaltReason::kHalted);
      EXPECT_EQ(sim.reg_int(2), hi * 243 + lo) << "hi=" << hi << " lo=" << lo;
    }
  }
}

TEST(IsaSemantics, BranchConditionMatrix) {
  // Every (LST value, B operand, opcode) combination.
  for (int lst = -1; lst <= 1; ++lst) {
    for (int b = -1; b <= 1; ++b) {
      for (const char* op : {"BEQ", "BNE"}) {
        const std::string b_text = b == -1 ? "-" : (b == 0 ? "0" : "+");
        const std::string source = "LIMM T2, " + std::to_string(lst) + "\nLIMM T5, 0\n" + op +
                                   " T2, " + b_text +
                                   ", taken\nLIMM T5, 1\ntaken: HALT\n";
        FunctionalSimulator sim(isa::assemble(source));
        ASSERT_EQ(sim.run().halt, HaltReason::kHalted);
        const bool eq = lst == b;
        const bool taken = (op == std::string("BEQ")) ? eq : !eq;
        EXPECT_EQ(sim.reg_int(5) == 0, taken) << op << " lst=" << lst << " b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace art9::sim
