// Bit-sliced fleet backend: 32 machines per plane word must be
// architecturally invisible.  Locks
//  * multi-lane cohorts bit-identical to solo golden runs at varied
//    per-lane budgets — including budget 0, budgets that die mid-block
//    (the slow-path tail), and lanes halting mid-cohort while siblings
//    keep running;
//  * incremental advance() slicing: any split of a lane's budget across
//    advance() calls lands on the same trajectory;
//  * a trapping lane commits its state, reports the solo run's exact
//    SimError text, and never tears down its cohort;
//  * per-lane unpack/restore round trips;
//  * SimulationService cohorts: submit_cohort and run_all's transparent
//    packing resolve every job bit-identically to a standalone engine,
//    at multiple worker-pool widths, across >32-job same-image batches.
#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/engine.hpp"
#include "sim/service.hpp"

namespace art9::sim {
namespace {

/// A budget-sensitive loop with memory traffic, fused pairs and a JALR
/// return — enough instructions that 32 distinct budgets land in 32
/// distinct architectural states.
const char* fleet_loop_source() {
  return R"(
    LIMM  T1, 20
    LIMM  T2, 0
    LIMM  T4, 100
  loop:
    ADD   T2, T1
    STORE T2, 0(T4)
    LOAD  T5, 0(T4)
    ADDI  T1, -1
    MV    T3, T1
    COMP  T3, T6
    BNE   T3, 0, loop
    JAL   T8, sub
    HALT
  sub:
    ADDI  T7, 3
    ADDI  T7, 4
    JALR  T0, T8, 0
  )";
}

/// Runs off the end of the program: traps at the fourth fetch.
const char* fleet_trap_source() { return "ADDI T1, 1\nADDI T2, 1\nADDI T3, 1\n"; }

/// The golden model's trajectory for one budget.
RunResult golden_run(const std::shared_ptr<const DecodedImage>& image, uint64_t budget) {
  return make_engine(EngineKind::kFunctional, image)->run({.max_steps = budget});
}

std::string golden_trap_message(const std::shared_ptr<const DecodedImage>& image) {
  std::unique_ptr<Engine> engine = make_engine(EngineKind::kFunctional, image);
  try {
    static_cast<void>(engine->run_stats({.max_steps = 1'000'000}));
  } catch (const std::exception& error) {
    return error.what();
  }
  ADD_FAILURE() << "golden run did not trap";
  return {};
}

TEST(FleetSimulator, LaneCountValidated) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  EXPECT_THROW(FleetSimulator(image, 0), std::invalid_argument);
  EXPECT_THROW(FleetSimulator(image, FleetSimulator::kMaxLanes + 1), std::invalid_argument);
  EXPECT_THROW(FleetSimulator(std::shared_ptr<const DecodedImage>{}, 1), std::invalid_argument);
  EXPECT_EQ(FleetSimulator(image, FleetSimulator::kMaxLanes).lanes(), FleetSimulator::kMaxLanes);
}

TEST(FleetSimulator, FullCohortMatchesSoloRunsAtVariedBudgets) {
  // 32 lanes, 32 distinct budgets (0, 1, 2, ... 31): every lane's state
  // and instruction count must equal a solo golden run of its budget —
  // tiny budgets exercise the per-instruction tail, mid budgets leave
  // lanes mid-loop while siblings diverge, none reach the halt.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  const unsigned lanes = FleetSimulator::kMaxLanes;

  FleetSimulator fleet(image, lanes);
  std::vector<uint64_t> budgets(lanes);
  for (unsigned i = 0; i < lanes; ++i) budgets[i] = i;
  const std::vector<FleetSimulator::LaneProgress> progress = fleet.advance(budgets);

  for (unsigned i = 0; i < lanes; ++i) {
    const RunResult want = golden_run(image, budgets[i]);
    EXPECT_EQ(progress[i].instructions, want.stats.instructions) << "lane " << i;
    EXPECT_FALSE(progress[i].halted) << "lane " << i;
    EXPECT_FALSE(progress[i].trapped) << "lane " << i;
    EXPECT_EQ(fleet.unpack_lane(i), want.state.art9()) << "lane " << i;
  }
}

TEST(FleetSimulator, LanesHaltMidCohortWhileSiblingsRun) {
  // Budgets straddling the program's full length: short lanes exhaust,
  // long lanes retire the halt convention and drop out of the mask —
  // each must match its solo run exactly.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  const SimStats full = make_engine(EngineKind::kFunctional, image)->run_stats();
  ASSERT_EQ(full.halt, HaltReason::kHalted);

  const unsigned lanes = 8;
  FleetSimulator fleet(image, lanes);
  std::vector<uint64_t> budgets(lanes);
  for (unsigned i = 0; i < lanes; ++i) {
    budgets[i] = full.instructions - 3 + i;  // 5 exhaust, 3 halt (>= full)
  }
  const std::vector<FleetSimulator::LaneProgress> progress = fleet.advance(budgets);

  for (unsigned i = 0; i < lanes; ++i) {
    const RunResult want = golden_run(image, budgets[i]);
    EXPECT_EQ(progress[i].instructions, want.stats.instructions) << "lane " << i;
    EXPECT_EQ(progress[i].halted, want.halt == HaltReason::kHalted) << "lane " << i;
    EXPECT_EQ(fleet.unpack_lane(i), want.state.art9()) << "lane " << i;
    EXPECT_EQ(fleet.pc(i), want.state.art9().pc) << "lane " << i;
  }
}

TEST(FleetSimulator, IncrementalAdvanceLandsOnTheSameTrajectory) {
  // Any slicing of a lane's budget across advance() calls must be
  // invisible: 40 single-step advances == one 40-step solo run, with a
  // sibling lane taking the same total in uneven chunks.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  FleetSimulator fleet(image, 2);

  uint64_t done0 = 0;
  uint64_t done1 = 0;
  const std::vector<uint64_t> chunks1 = {7, 0, 13, 1, 19};  // sums to 40
  for (unsigned step = 0; step < 40; ++step) {
    std::vector<uint64_t> budgets = {1, step < chunks1.size() ? chunks1[step] : 0};
    const std::vector<FleetSimulator::LaneProgress> progress = fleet.advance(budgets);
    done0 += progress[0].instructions;
    done1 += progress[1].instructions;
  }
  EXPECT_EQ(done0, 40u);
  EXPECT_EQ(done1, 40u);

  const RunResult want = golden_run(image, 40);
  EXPECT_EQ(fleet.unpack_lane(0), want.state.art9());
  EXPECT_EQ(fleet.unpack_lane(1), want.state.art9());
}

TEST(FleetSimulator, TrappingLaneDoesNotTearDownItsCohort) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_trap_source()));
  const std::string want_message = golden_trap_message(image);

  // Lanes 0..3 have budget i (exhaust before the faulting fetch); lanes
  // 4..7 have the headroom to trap.
  const unsigned lanes = 8;
  FleetSimulator fleet(image, lanes);
  std::vector<uint64_t> budgets(lanes);
  for (unsigned i = 0; i < lanes; ++i) budgets[i] = i;
  const std::vector<FleetSimulator::LaneProgress> progress = fleet.advance(budgets);

  std::unique_ptr<Engine> golden = make_engine(EngineKind::kFunctional, image);
  static_cast<void>(golden_trap_message(image));
  for (unsigned i = 0; i < lanes; ++i) {
    const bool should_trap = budgets[i] >= 4;
    EXPECT_EQ(progress[i].trapped, should_trap) << "lane " << i;
    if (should_trap) {
      EXPECT_EQ(progress[i].trap_message, want_message) << "lane " << i;
      EXPECT_EQ(progress[i].instructions, 3u) << "lane " << i;
    } else {
      EXPECT_EQ(progress[i].instructions, budgets[i]) << "lane " << i;
    }
    // Committed state bit-identical to the solo run of the same budget
    // (the golden engine's trap commits before throwing).
    std::unique_ptr<Engine> solo = make_engine(EngineKind::kFunctional, image);
    try {
      static_cast<void>(solo->run_stats({.max_steps = budgets[i]}));
    } catch (const std::exception&) {
    }
    EXPECT_EQ(fleet.unpack_lane(i), solo->state().art9()) << "lane " << i;
  }
}

TEST(FleetSimulator, UnpackRestoreRoundTripsPerLane) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));

  // Run lane 2 of a fleet 25 instructions in, capture, restore into lane
  // 5 of a fresh fleet, finish both against the solo trajectory.
  FleetSimulator first(image, 4);
  static_cast<void>(first.advance({0, 0, 25, 0}));
  const ArchState mid = first.unpack_lane(2);
  EXPECT_EQ(mid, golden_run(image, 25).state.art9());

  FleetSimulator second(image, 8);
  second.restore_lane(5, mid);
  EXPECT_EQ(second.unpack_lane(5), mid);
  EXPECT_EQ(second.pc(5), mid.pc);

  std::vector<uint64_t> budgets(8, 0);
  budgets[5] = 15;
  static_cast<void>(second.advance(budgets));
  EXPECT_EQ(second.unpack_lane(5), golden_run(image, 40).state.art9());

  EXPECT_THROW(static_cast<void>(second.unpack_lane(8)), std::out_of_range);
  EXPECT_THROW(second.restore_lane(8, mid), std::out_of_range);
}

TEST(FleetEngine, SingleLaneFacadeMatchesGoldenAtEveryBudget) {
  // The conformance suite sweeps kFleet across its full contract; this
  // is the direct spot check that the facade wires lane 0 correctly.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  const SimStats full = make_engine(EngineKind::kFunctional, image)->run_stats();
  for (uint64_t budget : {uint64_t{0}, uint64_t{1}, uint64_t{17}, full.instructions + 2}) {
    const RunResult want = golden_run(image, budget);
    const RunResult got = make_engine(EngineKind::kFleet, image)->run({.max_steps = budget});
    EXPECT_EQ(want.stats, got.stats) << "budget=" << budget;
    EXPECT_EQ(want.halt, got.halt) << "budget=" << budget;
    EXPECT_TRUE(want.state == got.state) << "state diverged at budget=" << budget;
  }
}

// ---------------------------------------------------------------------------
// Service cohorts

TEST(ServiceCohort, SubmitCohortValidatesItsContract) {
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  const std::shared_ptr<const DecodedImage> other = decode(isa::assemble(fleet_trap_source()));
  SimulationService service(1);

  using Job = SimulationService::Job;
  EXPECT_THROW(static_cast<void>(service.submit_cohort({})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(service.submit_cohort(
                   {Job{EngineImage(image), EngineKind::kSuperblock, {}, {}, {}}})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(
                   service.submit_cohort({Job{EngineImage(image), EngineKind::kFleet, {}, {}, {}},
                                          Job{EngineImage(other), EngineKind::kFleet, {}, {}, {}}})),
               std::invalid_argument);
  JobControls checkpointed;
  checkpointed.checkpoint_every = 100;
  EXPECT_THROW(static_cast<void>(service.submit_cohort(
                   {Job{EngineImage(image), EngineKind::kFleet, {}, {}, checkpointed}})),
               std::invalid_argument);
  JobControls retrying;
  retrying.retries = 1;
  EXPECT_THROW(static_cast<void>(service.submit_cohort(
                   {Job{EngineImage(image), EngineKind::kFleet, {}, {}, retrying}})),
               std::invalid_argument);
}

TEST(ServiceCohort, CohortResolvesEveryJobBitIdenticalToStandalone) {
  // 40 same-image jobs (> kMaxLanes, so submit_cohort chunks into two
  // cohorts) with budgets covering 0, the per-instruction tail, the
  // mid-loop range and completion — each must resolve exactly like a
  // standalone kFleet engine run, at several pool widths.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  const SimStats full = make_engine(EngineKind::kFunctional, image)->run_stats();
  ASSERT_EQ(full.halt, HaltReason::kHalted);

  const std::size_t jobs = 40;
  std::vector<uint64_t> budgets(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    budgets[i] = i < 36 ? i * 4 : full.instructions + i;  // last four complete
  }

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SimulationService service(threads);
    std::vector<SimulationService::Job> batch;
    batch.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
      batch.push_back({EngineImage(image), EngineKind::kFleet,
                       RunOptions{budgets[i]}, {}, {}});
    }
    const std::vector<JobHandle> handles = service.submit_cohort(std::move(batch));
    ASSERT_EQ(handles.size(), jobs);

    for (std::size_t i = 0; i < jobs; ++i) {
      const JobResult& got = handles[i].result();
      const RunResult want = make_engine(EngineKind::kFleet, image)->run({budgets[i]});
      EXPECT_EQ(got.outcome, want.halt == HaltReason::kHalted ? JobOutcome::kCompleted
                                                              : JobOutcome::kBudgetExhausted)
          << threads << " threads, job " << i;
      EXPECT_EQ(got.run.stats, want.stats) << threads << " threads, job " << i;
      EXPECT_EQ(got.run.state, want.state) << threads << " threads, job " << i;
    }
    EXPECT_EQ(service.submitted(), jobs);
    EXPECT_EQ(service.resolved(), jobs);
    EXPECT_EQ(service.queued(), 0u);
  }
}

TEST(ServiceCohort, RunAllPacksFleetJobsTransparently) {
  // run_all must pack fleet jobs sharing an image into cohorts while
  // non-fleet siblings (and a second image's fleet jobs) keep their
  // own lanes/engines — with results in job order, bit-identical to
  // standalone runs, at every pool width.
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_loop_source()));
  const std::shared_ptr<const DecodedImage> other = decode(isa::assemble(fleet_trap_source()));
  constexpr RunOptions kBudget{50};

  auto build = [&](SimulationService& service) {
    for (int i = 0; i < 6; ++i) {
      service.add(image, EngineKind::kFleet, RunOptions{static_cast<uint64_t>(10 * i)});
      service.add(image, EngineKind::kSuperblock, kBudget);
    }
    service.add(other, EngineKind::kFleet, kBudget);  // traps: its own cohort
  };

  std::vector<JobResult> sequential;
  for (unsigned threads : {1u, 2u, 4u}) {
    SimulationService service(threads);
    build(service);
    const std::vector<JobResult> results = service.run_all();
    ASSERT_EQ(results.size(), 13u);

    if (threads == 1u) {
      sequential = results;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].outcome, sequential[i].outcome) << threads << " threads, job " << i;
        EXPECT_EQ(results[i].run.stats, sequential[i].run.stats)
            << threads << " threads, job " << i;
        EXPECT_EQ(results[i].run.state, sequential[i].run.state)
            << threads << " threads, job " << i;
      }
    }

    for (int i = 0; i < 6; ++i) {
      const RunResult fleet_want =
          make_engine(EngineKind::kFleet, image)->run({static_cast<uint64_t>(10 * i)});
      EXPECT_EQ(results[2 * i].run.stats, fleet_want.stats) << "fleet job " << i;
      EXPECT_EQ(results[2 * i].run.state, fleet_want.state) << "fleet job " << i;
      const RunResult sb_want = make_engine(EngineKind::kSuperblock, image)->run(kBudget);
      EXPECT_EQ(results[2 * i + 1].run.stats, sb_want.stats) << "superblock job " << i;
      EXPECT_EQ(results[2 * i + 1].run.state, sb_want.state) << "superblock job " << i;
    }
    EXPECT_EQ(results[12].outcome, JobOutcome::kTrapped);
    EXPECT_EQ(results[12].error, golden_trap_message(other));
  }
}

TEST(ServiceCohort, TrappingLaneResolvesAloneWithTheSoloTrapText) {
  // One cohort mixing budgets over the trapping image: short-budget
  // lanes resolve kBudgetExhausted, trapping lanes kTrapped with the
  // exact standalone message and the committed pre-trap state — and the
  // stats a standalone execute_job would report (its engine throws
  // mid-slice, so the partial slice never accumulates).
  const std::shared_ptr<const DecodedImage> image = decode(isa::assemble(fleet_trap_source()));
  SimulationService service(2);

  const std::vector<uint64_t> budgets = {2, 1000, 3, 1000};
  std::vector<SimulationService::Job> batch;
  for (uint64_t budget : budgets) {
    batch.push_back({EngineImage(image), EngineKind::kFleet, RunOptions{budget}, {}, {}});
  }
  const std::vector<JobHandle> handles = service.submit_cohort(std::move(batch));

  for (std::size_t i = 0; i < handles.size(); ++i) {
    const JobResult& got = handles[i].result();
    // The standalone path: one fleet job through submit() (its own
    // engine, execute_job's classification).
    SimulationService solo_service(1);
    const JobResult solo =
        solo_service.submit(image, EngineKind::kFleet, RunOptions{budgets[i]}).result();
    EXPECT_EQ(got.outcome, solo.outcome) << "job " << i;
    EXPECT_EQ(got.error, solo.error) << "job " << i;
    EXPECT_EQ(got.run.stats, solo.run.stats) << "job " << i;
    EXPECT_EQ(got.run.state, solo.run.state) << "job " << i;
  }
}

}  // namespace
}  // namespace art9::sim
