// Scheduler concurrency stress: many client threads submitting,
// cancelling, polling and registering callbacks against one service
// while a batch drains.  The assertions are deliberately loose — every
// job resolves exactly once, to a sane outcome — because the point of
// this test is the ThreadSanitizer CI leg (ART9_TSAN): it must be
// race-clean, not merely pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "isa/assembler.hpp"
#include "rv32/rv32_assembler.hpp"
#include "sim/fault_injection.hpp"
#include "sim/service.hpp"

namespace art9::sim {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const DecodedImage> work_image() {
  static const std::shared_ptr<const DecodedImage> kImage = decode(isa::assemble(R"(
        LIMM T1, 200
      loop:
        ADDI T1, -1
        COMP T2, T1
        BNE  T2, 0, loop
        HALT
      )"));
  return kImage;
}

std::shared_ptr<const rv32::Rv32DecodedImage> rv32_work_image() {
  static const std::shared_ptr<const rv32::Rv32DecodedImage> kImage =
      rv32::decode(rv32::assemble_rv32(R"(
        li   t0, 150
      loop:
        addi t0, t0, -1
        bnez t0, loop
        ebreak
      )"));
  return kImage;
}

TEST(ServiceStress, ConcurrentSubmitCancelResubmitWhileBatchDrains) {
  constexpr unsigned kClients = 4;
  constexpr unsigned kJobsPerClient = 40;

  std::vector<JobHandle> batch;
  std::atomic<unsigned> callbacks_fired{0};
  std::atomic<unsigned> resolved{0};

  {
    SimulationService service(4);

    // A background batch draining while the clients hammer the service.
    for (int i = 0; i < 24; ++i) {
      batch.push_back(service.submit(work_image(), EngineKind::kPacked));
      batch.push_back(service.submit(rv32_work_image(), EngineKind::kRv32));
    }

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto plan = std::make_shared<FaultPlan>(FaultPlan::seeded(c + 1, 100));
        for (unsigned j = 0; j < kJobsPerClient; ++j) {
          JobControls controls;
          controls.slice_steps = 64;
          if (j % 5 == 0) {
            controls.fault = plan;  // a shared plan: each job gets its own state
            controls.retries = 1;
          }
          JobHandle handle = (c % 2 == 0)
                                 ? service.submit(work_image(), EngineKind::kFunctional,
                                                  RunOptions{5'000}, controls)
                                 : service.submit(rv32_work_image(), EngineKind::kRv32,
                                                  RunOptions{5'000}, controls);
          handle.on_complete([&](const JobResult&) { ++callbacks_fired; });
          if (j % 3 == 0) handle.cancel();  // races the worker: either order is fine
          if (j % 7 == 0) {
            (void)handle.ready();
            (void)handle.started();
          }
          const JobResult& result = handle.result();
          // Every outcome in the taxonomy is legal here; the job must
          // simply have resolved to exactly one of them.
          EXPECT_LE(static_cast<unsigned>(result.outcome),
                    static_cast<unsigned>(JobOutcome::kFaulted));
          if (result.outcome == JobOutcome::kCompleted) {
            EXPECT_EQ(result.run.halt, HaltReason::kHalted);
          }
          ++resolved;
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }  // drain destructor: joins the workers, so every callback has run

  for (JobHandle& handle : batch) {
    EXPECT_EQ(handle.result().outcome, JobOutcome::kCompleted);
  }
  EXPECT_EQ(resolved.load(), kClients * kJobsPerClient);
  EXPECT_EQ(callbacks_fired.load(), kClients * kJobsPerClient);
}

TEST(ServiceStress, CancelFromManyThreadsIsIdempotent) {
  SimulationService service(2);
  JobControls controls;
  controls.slice_steps = 1u << 10;
  JobHandle handle = service.submit(
      decode(isa::assemble("loop:\n  ADDI T1, 1\n  JAL T0, loop\n")), EngineKind::kFunctional,
      RunOptions{100'000'000'000}, controls);

  std::vector<std::thread> cancellers;
  for (int i = 0; i < 8; ++i) cancellers.emplace_back([&] { handle.cancel(); });
  for (std::thread& t : cancellers) t.join();

  EXPECT_EQ(handle.result().outcome, JobOutcome::kCancelled);
}

TEST(ServiceStress, DestructorDrainsOutstandingJobs) {
  std::vector<JobHandle> handles;
  {
    SimulationService service(3);
    for (int i = 0; i < 30; ++i) {
      handles.push_back(service.submit(work_image(), EngineKind::kFunctional));
    }
  }  // drain: every job resolved before the pool joined
  for (JobHandle& handle : handles) {
    ASSERT_TRUE(handle.ready());
    EXPECT_EQ(handle.result().outcome, JobOutcome::kCompleted);
  }
}

}  // namespace
}  // namespace art9::sim
