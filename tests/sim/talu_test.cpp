// TALU semantics against host-integer references.
#include "sim/talu.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ternary/random.hpp"

namespace art9::sim {
namespace {

using isa::Instruction;
using isa::Opcode;
using ternary::kTritZ;
using ternary::random_word;
using ternary::Word9;

Instruction make(Opcode op, int imm = 0) { return Instruction{op, 0, 0, kTritZ, imm}; }

TEST(Talu, ArithmeticOps) {
  std::mt19937_64 rng(100);
  for (int i = 0; i < 3000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    EXPECT_EQ(execute(make(Opcode::kAdd), a, b).to_int(),
              Word9::from_int_wrapped(a.to_int() + b.to_int()).to_int());
    EXPECT_EQ(execute(make(Opcode::kSub), a, b).to_int(),
              Word9::from_int_wrapped(a.to_int() - b.to_int()).to_int());
    EXPECT_EQ(execute(make(Opcode::kMv), a, b), b);
  }
}

TEST(Talu, LogicOps) {
  std::mt19937_64 rng(101);
  for (int i = 0; i < 2000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    EXPECT_EQ(execute(make(Opcode::kAnd), a, b), ternary::tand(a, b));
    EXPECT_EQ(execute(make(Opcode::kOr), a, b), ternary::tor(a, b));
    EXPECT_EQ(execute(make(Opcode::kXor), a, b), ternary::txor(a, b));
    EXPECT_EQ(execute(make(Opcode::kSti), a, b), ternary::sti(b));
    EXPECT_EQ(execute(make(Opcode::kNti), a, b), ternary::nti(b));
    EXPECT_EQ(execute(make(Opcode::kPti), a, b), ternary::pti(b));
  }
}

TEST(Talu, RegisterShifts) {
  // SR/SL take the unsigned value of Tb's two least-significant trits.
  std::mt19937_64 rng(102);
  for (int amount = 0; amount <= 8; ++amount) {
    const Word9 b = Word9::from_unsigned(amount);  // low trits encode `amount`
    EXPECT_EQ(shift_amount(b), amount);
    for (int i = 0; i < 200; ++i) {
      const Word9 a = random_word<9>(rng);
      EXPECT_EQ(execute(make(Opcode::kSr), a, b), a.shr(static_cast<std::size_t>(amount)));
      EXPECT_EQ(execute(make(Opcode::kSl), a, b), a.shl(static_cast<std::size_t>(amount)));
    }
  }
}

TEST(Talu, ShiftAmountIgnoresUpperTrits) {
  Word9 b = Word9::from_unsigned(5);
  b.set(7, ternary::kTritP);  // garbage above [1:0]
  EXPECT_EQ(shift_amount(b), 5);
}

TEST(Talu, CompWritesSignToLstAndZerosUppers) {
  std::mt19937_64 rng(103);
  for (int i = 0; i < 2000; ++i) {
    const Word9 a = random_word<9>(rng);
    const Word9 b = random_word<9>(rng);
    const Word9 r = execute(make(Opcode::kComp), a, b);
    const int expected = (a.to_int() > b.to_int()) - (a.to_int() < b.to_int());
    EXPECT_EQ(r.lst().value(), expected);
    for (std::size_t k = 1; k < 9; ++k) EXPECT_EQ(r[k], kTritZ);
    EXPECT_EQ(r.to_int(), expected);  // whole word equals the sign
  }
}

TEST(Talu, ImmediateOps) {
  std::mt19937_64 rng(104);
  for (int imm = -13; imm <= 13; ++imm) {
    for (int i = 0; i < 50; ++i) {
      const Word9 a = random_word<9>(rng);
      EXPECT_EQ(execute(make(Opcode::kAddi, imm), a, Word9{}).to_int(),
                Word9::from_int_wrapped(a.to_int() + imm).to_int());
      EXPECT_EQ(execute(make(Opcode::kAndi, imm), a, Word9{}),
                ternary::tand(a, Word9::from_int(imm)));
    }
  }
  for (int sh = 0; sh <= 8; ++sh) {
    const Word9 a = random_word<9>(rng);
    EXPECT_EQ(execute(make(Opcode::kSri, sh), a, Word9{}), a.shr(static_cast<std::size_t>(sh)));
    EXPECT_EQ(execute(make(Opcode::kSli, sh), a, Word9{}), a.shl(static_cast<std::size_t>(sh)));
  }
}

TEST(Talu, LuiLiComposition) {
  // LUI hi ; LI lo must materialise hi*243 + lo for any 9-trit value.
  for (int64_t v = -9841; v <= 9841; v += 97) {
    const Word9 w = Word9::from_int(v);
    const int hi = static_cast<int>(w.slice<4>(5).to_int());
    const int lo = static_cast<int>(w.slice<5>(0).to_int());
    const Word9 after_lui = execute(make(Opcode::kLui, hi), Word9{}, Word9{});
    const Word9 after_li = execute(make(Opcode::kLi, lo), after_lui, Word9{});
    EXPECT_EQ(after_li.to_int(), v);
  }
}

TEST(Talu, LiKeepsUpperTrits) {
  const Word9 base = Word9::from_int(243 * 7);  // upper trits encode 7
  const Word9 r = execute(make(Opcode::kLi, -5), base, Word9{});
  EXPECT_EQ(r.slice<4>(5).to_int(), 7);
  EXPECT_EQ(r.slice<5>(0).to_int(), -5);
}

TEST(Talu, ControlOpsRejected) {
  EXPECT_THROW((void)execute(make(Opcode::kBeq), Word9{}, Word9{}), std::logic_error);
  EXPECT_THROW((void)execute(make(Opcode::kJal), Word9{}, Word9{}), std::logic_error);
  EXPECT_THROW((void)execute(make(Opcode::kLoad), Word9{}, Word9{}), std::logic_error);
}

}  // namespace
}  // namespace art9::sim
