// Fixed-seed smoke over the differential fuzz harness: a deterministic
// slice of what `art9-fuzz` / the libFuzzer target explore, kept green
// in the tier-1 suite so the harness itself can't rot.  Every divergence
// the fuzzer has ever found is pinned in fixed_corpus() once minimized —
// the regression ratchet the fuzz subsystem exists to feed.
#include "fuzz/harness.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace art9::fuzz {
namespace {

/// Re-pins the mode selector byte: repros must stay on the oracle that
/// caught them even when a new mode widens the selector modulus (as
/// mode 4 "snapshot" did) — only byte 0 changes, so the decoded case is
/// otherwise bit-identical.
std::vector<uint8_t> pinned_to_mode(std::vector<uint8_t> bytes, uint8_t mode) {
  bytes[0] = mode;
  return bytes;
}

/// Minimized repro inputs of every fuzzer-found divergence, kept forever
/// as fixed regressions (replayable standalone: `art9-fuzz <file>` on
/// the same bytes).  Empty entries are never added — each one documents
/// the bug it caught.
const std::vector<std::pair<std::string, std::vector<uint8_t>>>& fixed_corpus() {
  static const std::vector<std::pair<std::string, std::vector<uint8_t>>> kCorpus = {
      // The fuzzer's first catch: `resumed->checkpoint().art9()` bound a
      // reference into the destroyed temporary MachineState, so the
      // snapshot-leg comparison read freed heap — these two inputs flagged
      // phantom TDM divergences whenever earlier cases had warmed the
      // allocator.  Fixed by ref-qualifying MachineState::art9()/rv32()
      // (rvalue access moves the view out) and binding a named boundary.
      {"dangling checkpoint view, packed->pipeline leg", pinned_to_mode(seeded_input(1, 24), 0)},
      {"dangling checkpoint view, packed->lazy counter leg",
       pinned_to_mode(seeded_input(1, 29), 0)},
      // Pinned coverage (not a bug repro): a hand-built raw-mode case
      // whose program is one straight line of every superblock fusion
      // pattern — LUI+LI and LUI+ADDI constant formation, LOAD+ADD, and
      // COMP+BEQ — so the superblock tier's macro-op fusion stays under
      // the raw oracle's byte-identical trap/state parity forever.
      // Layout: mode=3(raw), len byte 9 (10 instructions), budget 512,
      // then per instruction: op, ta, tb, bcond, [imm16le].
      {"superblock fused-pair straight line, raw parity",
       {3,    9,    0xFF, 0x01,              // raw, 10 instructions, budget 512
        16,   1,    0,    1,    0x2B, 0x00,  // LUI  t1, 3
        17,   1,    0,    1,    0x7E, 0x00,  // LI   t1, 5   (fused const)
        16,   2,    0,    1,    0x2A, 0x00,  // LUI  t2, 2
        13,   2,    0,    1,    0x14, 0x00,  // ADDI t2, 7   (fused const)
        22,   3,    4,    1,    0x0D, 0x00,  // LOAD t3, [t4+0]
        7,    5,    3,    1,                 // ADD  t5, t3  (fused load+op)
        11,   6,    1,    1,                 // COMP t6, t1
        18,   0,    6,    1,    0x2A, 0x00,  // BEQ  t6, 0, +2 (fused cmp+branch)
        20,   0,    0,    1,    0x79, 0x00,  // JAL  t0, 0 — halt (not taken)
        20,   0,    0,    1,    0x79, 0x00}},  // JAL t0, 0 — halt (taken)
  };
  return kCorpus;
}

TEST(FuzzHarness, FixedCorpusStaysGreen) {
  for (const auto& [name, bytes] : fixed_corpus()) {
    const FuzzResult result = run_fuzz_case(bytes.data(), bytes.size());
    EXPECT_TRUE(result.ok) << name << ": [" << result.mode << "] " << result.detail;
  }
}

TEST(FuzzHarness, SeededSweepFindsNoDivergence) {
  // The same inputs `art9-fuzz --seed 1 --runs 64` replays: a cheap,
  // fully deterministic slice across all five oracle modes.
  for (uint64_t index = 0; index < 64; ++index) {
    const std::vector<uint8_t> input = seeded_input(1, index);
    const FuzzResult result = run_fuzz_case(input.data(), input.size());
    EXPECT_TRUE(result.ok) << "seed=1 index=" << index << " [" << result.mode << "] "
                           << result.detail;
  }
}

TEST(FuzzHarness, EveryModeRunsOnForcedSelector) {
  // Pinning the mode byte (what art9-fuzz --mode does) reaches each
  // oracle; all five stay green on a handful of seeded inputs.
  const std::vector<std::string> modes = {"art9", "rv32", "xlat", "raw", "snapshot"};
  for (uint8_t mode = 0; mode < 5; ++mode) {
    for (uint64_t index = 0; index < 8; ++index) {
      std::vector<uint8_t> input = seeded_input(7, index);
      input[0] = mode;
      const FuzzResult result = run_fuzz_case(input.data(), input.size());
      EXPECT_EQ(result.mode, modes[mode]);
      EXPECT_TRUE(result.ok) << "mode=" << modes[mode] << " index=" << index << " "
                             << result.detail;
    }
  }
}

TEST(FuzzHarness, EmptyAndTinyInputsAreValidCases) {
  // Exhausted bytes read as zero: the empty input and every prefix of a
  // valid input are themselves valid cases (shrinking never leaves the
  // grammar).
  EXPECT_TRUE(run_fuzz_case(nullptr, 0).ok);
  const std::vector<uint8_t> input = seeded_input(3, 0);
  for (std::size_t len : {1u, 2u, 9u, 17u}) {
    const FuzzResult result = run_fuzz_case(input.data(), len);
    EXPECT_TRUE(result.ok) << "len=" << len << " [" << result.mode << "] " << result.detail;
  }
}

TEST(FuzzHarness, SeededInputIsDeterministic) {
  EXPECT_EQ(seeded_input(42, 7), seeded_input(42, 7));
  EXPECT_NE(seeded_input(42, 7), seeded_input(42, 8));
  EXPECT_NE(seeded_input(42, 7), seeded_input(43, 7));
}

}  // namespace
}  // namespace art9::fuzz
