// Performance estimator: the DMIPS fusion math of Tables II, IV and V.
#include "tech/estimator.hpp"

#include <gtest/gtest.h>

#include "tech/datapath.hpp"

namespace art9::tech {
namespace {

constexpr uint64_t kPaperCyclesPerIteration = 1342;  // 134,200 cycles / 100 (Table III)

TEST(Estimator, DmipsPerMhzFromCycles) {
  PerformanceEstimator estimator;
  const PerformanceEstimate est = estimator.estimate(
      build_art9_design(), Technology::cntfet32(), kPaperCyclesPerIteration);
  // Table II: 0.42 DMIPS/MHz.
  EXPECT_NEAR(est.dmips_per_mhz, 0.42, 0.005);
}

TEST(Estimator, CntfetDmipsPerWattMatchesTableIV) {
  PerformanceEstimator estimator;
  const PerformanceEstimate est = estimator.estimate(
      build_art9_design(), Technology::cntfet32(), kPaperCyclesPerIteration);
  // Table IV: 3.06e6 DMIPS/W (we allow the clock-model tolerance).
  EXPECT_GT(est.dmips_per_watt, 2.5e6);
  EXPECT_LT(est.dmips_per_watt, 3.6e6);
  EXPECT_GT(est.dmips, 100.0);  // ~0.42 * ~310 MHz
}

TEST(Estimator, FpgaDmipsPerWattMatchesTableV) {
  PerformanceEstimator estimator;
  const PerformanceEstimate est = estimator.estimate(
      build_art9_design(), Technology::fpga_binary_emulation(), kPaperCyclesPerIteration);
  EXPECT_DOUBLE_EQ(est.clock_mhz, 150.0);
  // Table V: 57.8 DMIPS/W at 1.09 W.
  EXPECT_NEAR(est.dmips_per_watt, 57.8, 4.0);
}

TEST(Estimator, ZeroCyclesYieldsZeroMetrics) {
  PerformanceEstimator estimator;
  const PerformanceEstimate est =
      estimator.estimate(build_art9_design(), Technology::cntfet32(), 0);
  EXPECT_EQ(est.dmips_per_mhz, 0.0);
  EXPECT_EQ(est.dmips, 0.0);
}

TEST(Estimator, SummaryRendering) {
  PerformanceEstimator estimator;
  const PerformanceEstimate cntfet = estimator.estimate(
      build_art9_design(), Technology::cntfet32(), kPaperCyclesPerIteration);
  const std::string line = summarize(cntfet);
  EXPECT_NE(line.find("CNTFET-32nm"), std::string::npos);
  EXPECT_NE(line.find("652"), std::string::npos);
  EXPECT_NE(line.find("DMIPS/W"), std::string::npos);

  const PerformanceEstimate fpga = estimator.estimate(
      build_art9_design(), Technology::fpga_binary_emulation(), kPaperCyclesPerIteration);
  const std::string fline = summarize(fpga);
  EXPECT_NE(fline.find("ALMs"), std::string::npos);
  EXPECT_NE(fline.find("9216"), std::string::npos);
}

TEST(Estimator, FasterIterationImprovesEveryMetric) {
  PerformanceEstimator estimator;
  const Technology tech = Technology::cntfet32();
  const PerformanceEstimate slow = estimator.estimate(build_art9_design(), tech, 2000);
  const PerformanceEstimate fast = estimator.estimate(build_art9_design(), tech, 1000);
  EXPECT_GT(fast.dmips_per_mhz, slow.dmips_per_mhz);
  EXPECT_GT(fast.dmips, slow.dmips);
  EXPECT_GT(fast.dmips_per_watt, slow.dmips_per_watt);
  EXPECT_DOUBLE_EQ(fast.clock_mhz, slow.clock_mhz);  // clock is cycle-independent
}

}  // namespace
}  // namespace art9::tech
