// Gate-level analyzer + datapath netlist against Tables IV and V.
#include <gtest/gtest.h>

#include "tech/analyzer.hpp"
#include "tech/datapath.hpp"

namespace art9::tech {
namespace {

TEST(Datapath, GateCountMatchesTableIV) {
  const Art9Design design = build_art9_design();
  GateLevelAnalyzer analyzer;
  const AnalysisReport report = analyzer.analyze(design, Technology::cntfet32());
  // Paper Table IV: the 5-stage datapath costs 652 standard ternary gates.
  EXPECT_DOUBLE_EQ(report.total_gates, 652.0);
}

TEST(Datapath, PowerMatchesTableIV) {
  const Art9Design design = build_art9_design();
  GateLevelAnalyzer analyzer;
  const AnalysisReport report = analyzer.analyze(design, Technology::cntfet32());
  // 42.7 uW at 0.9 V.
  EXPECT_NEAR(report.power_w, 42.7e-6, 0.05e-6);
  EXPECT_DOUBLE_EQ(report.voltage_v, 0.9);
}

TEST(Datapath, ModuleBreakdownCoversFigure4) {
  const Art9Design design = build_art9_design();
  GateLevelAnalyzer analyzer;
  const AnalysisReport report = analyzer.analyze(design, Technology::cntfet32());
  for (const char* module : {"TALU", "main-decoder", "hazard-detection", "forwarding-mux",
                             "branch-unit", "pc-logic"}) {
    EXPECT_TRUE(report.module_area.contains(module)) << module;
    EXPECT_GT(report.module_area.at(module), 0.0) << module;
  }
  // The TALU dominates the datapath.
  double total = 0.0;
  for (const auto& [name, area] : report.module_area) total += area;
  EXPECT_NEAR(total, report.total_gates, 1e-9);
  EXPECT_GT(report.module_area.at("TALU") / total, 0.4);
}

TEST(Datapath, CriticalPathGivesHundredsOfMhz) {
  const Art9Design design = build_art9_design();
  GateLevelAnalyzer analyzer;
  const AnalysisReport report = analyzer.analyze(design, Technology::cntfet32());
  // The EX-stage ripple path dominates; Table IV's DMIPS/W at 0.42
  // DMIPS/MHz implies a clock near 310 MHz.
  EXPECT_GT(report.max_clock_mhz, 250.0);
  EXPECT_LT(report.max_clock_mhz, 400.0);
  EXPECT_GT(report.critical_delay_ps, 2500.0);
}

TEST(Datapath, FpgaResourcesMatchTableV) {
  const Art9Design design = build_art9_design();
  GateLevelAnalyzer analyzer;
  const AnalysisReport report = analyzer.analyze(design, Technology::fpga_binary_emulation());
  // Table V: 803 ALMs, 339 registers, 9216 RAM bits, 1.09 W, 150 MHz.
  EXPECT_NEAR(report.alms, 803.0, 80.0);
  EXPECT_EQ(report.ff_bits, 339);
  EXPECT_EQ(report.ram_bits, 9216);
  EXPECT_NEAR(report.power_w, 1.09, 0.05);
  EXPECT_DOUBLE_EQ(report.max_clock_mhz, 150.0);
}

TEST(Datapath, AblationShrinksNetlist) {
  GateLevelAnalyzer analyzer;
  const Technology tech = Technology::cntfet32();
  const AnalysisReport full = analyzer.analyze(build_art9_design(), tech);

  DatapathOptions no_fwd;
  no_fwd.ex_forwarding = false;
  const AnalysisReport without_fwd = analyzer.analyze(build_art9_design(no_fwd), tech);
  EXPECT_LT(without_fwd.total_gates, full.total_gates);
  // Dropping the forwarding muxes also shortens the EX critical path.
  EXPECT_LT(without_fwd.critical_delay_ps, full.critical_delay_ps);

  DatapathOptions no_branch_id;
  no_branch_id.branch_in_id = false;
  const AnalysisReport without_branch = analyzer.analyze(build_art9_design(no_branch_id), tech);
  EXPECT_LT(without_branch.total_gates, full.total_gates);
}

TEST(Datapath, StateInventory) {
  const Art9Design design = build_art9_design();
  // TRF (81) + PC (9) + pipeline latches (79) = 169 trits.
  EXPECT_EQ(design.state_trits, 169);
  EXPECT_EQ(design.binary_state_bits, 1);
  EXPECT_EQ(design.tim_words, 256);
  EXPECT_EQ(design.tdm_words, 256);
}

TEST(Technology, CellTables) {
  const Technology cntfet = Technology::cntfet32();
  EXPECT_EQ(cntfet.fabric(), Fabric::kTernaryGates);
  for (CellType t : all_cell_types()) {
    if (t == CellType::kTdff) continue;
    EXPECT_GT(cntfet.cell(t).gate_equivalents, 0.0) << cell_name(t);
    EXPECT_GT(cntfet.cell(t).delay_ps, 0.0) << cell_name(t);
  }
  const Technology fpga = Technology::fpga_binary_emulation();
  EXPECT_EQ(fpga.fabric(), Fabric::kBinaryEmulation);
  EXPECT_DOUBLE_EQ(fpga.cell(CellType::kTdff).ff_bits, 2.0);  // 2 bits per trit
  EXPECT_DOUBLE_EQ(fpga.memory().bits_per_trit, 2.0);
  EXPECT_DOUBLE_EQ(fpga.clock_cap_mhz(), 150.0);
}

TEST(Netlist, Composition) {
  Netlist inner("inner");
  inner.add(CellType::kTfa, 9);
  Netlist outer("outer");
  outer.add(inner);
  outer.add(CellType::kSti, 3);
  EXPECT_EQ(outer.count(CellType::kTfa), 9);
  EXPECT_EQ(outer.count(CellType::kSti), 3);
  EXPECT_EQ(outer.combinational_cells(), 12);
  ASSERT_EQ(outer.children().size(), 1u);
  EXPECT_EQ(outer.children()[0].name(), "inner");
}

}  // namespace
}  // namespace art9::tech
