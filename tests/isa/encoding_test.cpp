// 9-trit instruction encoding: encode/decode round-trips over the whole
// operand space of every opcode, plus invalid-pattern rejection.
#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include <set>

namespace art9::isa {
namespace {

using ternary::kTritN;
using ternary::kTritP;
using ternary::kTritZ;
using ternary::Trit;
using ternary::Word9;

/// Enumerates every legal operand combination of `op` (full register
/// sweeps, full immediate sweeps).
std::vector<Instruction> all_instructions(Opcode op) {
  const OpcodeSpec& s = spec(op);
  std::vector<Instruction> out;
  auto regs = [] { return std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}; };
  switch (s.format) {
    case Format::kRBinary:
    case Format::kRUnary:
      for (int ta : regs()) {
        for (int tb : regs()) out.push_back({op, ta, tb, kTritZ, 0});
      }
      break;
    case Format::kImm3:
    case Format::kShiftImm:
    case Format::kLui:
    case Format::kLi:
      for (int ta : regs()) {
        for (int imm = s.imm_min; imm <= s.imm_max; ++imm) out.push_back({op, ta, 0, kTritZ, imm});
      }
      break;
    case Format::kBranch:
      for (int tb : regs()) {
        for (Trit b : ternary::kAllTrits) {
          for (int imm = s.imm_min; imm <= s.imm_max; imm += 3) {
            out.push_back({op, 0, tb, b, imm});
          }
        }
      }
      break;
    case Format::kJal:
      for (int ta : regs()) {
        for (int imm = s.imm_min; imm <= s.imm_max; imm += 2) out.push_back({op, ta, 0, kTritZ, imm});
      }
      break;
    case Format::kJalr:
    case Format::kMem:
      for (int ta : regs()) {
        for (int tb : regs()) {
          for (int imm = s.imm_min; imm <= s.imm_max; ++imm) {
            out.push_back({op, ta, tb, kTritZ, imm});
          }
        }
      }
      break;
  }
  return out;
}

class EncodingRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(EncodingRoundTrip, EncodeDecodeIsIdentity) {
  for (const Instruction& inst : all_instructions(GetParam())) {
    const Word9 w = encode(inst);
    const Instruction back = decode(w);
    EXPECT_EQ(back, inst) << to_string(inst) << " -> " << w.to_string() << " -> "
                          << to_string(back);
  }
}

TEST_P(EncodingRoundTrip, EncodingsAreInjective) {
  std::set<int64_t> seen;
  for (const Instruction& inst : all_instructions(GetParam())) {
    const int64_t key = encode(inst).to_unsigned();
    EXPECT_TRUE(seen.insert(key).second) << "duplicate encoding for " << to_string(inst);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip, ::testing::ValuesIn(all_opcodes()),
                         [](const ::testing::TestParamInfo<Opcode>& param_info) {
                           return std::string(mnemonic(param_info.param));
                         });

TEST(Encoding, CrossOpcodeInjectivity) {
  // No two instructions from *different* opcodes may share an encoding.
  std::set<int64_t> seen;
  std::size_t total = 0;
  for (Opcode op : all_opcodes()) {
    for (const Instruction& inst : all_instructions(op)) {
      EXPECT_TRUE(seen.insert(encode(inst).to_unsigned()).second)
          << "collision at " << to_string(inst);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Encoding, ImmediateRangeChecks) {
  EXPECT_THROW((void)encode({Opcode::kAddi, 0, 0, kTritZ, 14}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kAddi, 0, 0, kTritZ, -14}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kSri, 0, 0, kTritZ, 9}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kSri, 0, 0, kTritZ, -1}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kLui, 0, 0, kTritZ, 41}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kLi, 0, 0, kTritZ, 122}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kBeq, 0, 0, kTritZ, 41}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kJal, 0, 0, kTritZ, -122}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kLoad, 0, 0, kTritZ, 14}), EncodeError);
}

TEST(Encoding, RegisterRangeChecks) {
  EXPECT_THROW((void)encode({Opcode::kAdd, 9, 0, kTritZ, 0}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kAdd, -1, 0, kTritZ, 0}), EncodeError);
  EXPECT_THROW((void)encode({Opcode::kAdd, 0, 9, kTritZ, 0}), EncodeError);
}

TEST(Encoding, InvalidPatternsRejected) {
  // Undefined R-type func values 12..17 (t6 level <= 1).
  for (int func = 12; func <= 17; ++func) {
    Word9 w;
    w.set(8, Trit(-1));  // level 0
    w.set(7, Trit(-1));  // level 0
    w.set(6, Trit(func / 9 - 1));
    w.set(5, Trit((func % 9) / 3 - 1));
    w.set(4, Trit(func % 3 - 1));
    EXPECT_THROW((void)decode(w), DecodeError) << "func=" << func;
    EXPECT_FALSE(is_valid_encoding(w));
  }
  // Undefined I-short selectors 4..8.
  for (int sel = 4; sel <= 8; ++sel) {
    Word9 w;
    w.set(8, Trit(-1));
    w.set(7, Trit(0));  // level 1
    w.set(6, Trit(sel / 3 - 1));
    w.set(5, Trit(sel % 3 - 1));
    EXPECT_THROW((void)decode(w), DecodeError) << "sel=" << sel;
  }
  // SRI with a non-zero pad trit.
  Word9 w = encode({Opcode::kSri, 3, 0, kTritZ, 4});
  w.set(2, kTritP);
  EXPECT_THROW((void)decode(w), DecodeError);
  EXPECT_EQ(try_decode(w), std::nullopt);
}

TEST(Encoding, NopAndHaltEncodings) {
  // NOP = ADDI T0, 0 (paper §IV-B); HALT = JAL T0, 0 (repo convention).
  EXPECT_EQ(decode(encode(Instruction::nop())), Instruction::nop());
  EXPECT_EQ(decode(encode(Instruction::halt())), Instruction::halt());
  EXPECT_TRUE(is_valid_encoding(encode(Instruction::nop())));
}

TEST(Encoding, SpecMetadata) {
  EXPECT_EQ(kNumOpcodes, 24);  // Table I: exactly 24 instructions
  EXPECT_EQ(mnemonic(Opcode::kComp), "COMP");
  EXPECT_EQ(opcode_from_mnemonic("add"), Opcode::kAdd);
  EXPECT_EQ(opcode_from_mnemonic("STORE"), Opcode::kStore);
  EXPECT_THROW((void)opcode_from_mnemonic("nope"), std::invalid_argument);
  EXPECT_TRUE(spec(Opcode::kLoad).is_load);
  EXPECT_TRUE(spec(Opcode::kStore).is_store);
  EXPECT_TRUE(spec(Opcode::kStore).reads_ta);
  EXPECT_FALSE(spec(Opcode::kLui).reads_ta);
  EXPECT_TRUE(spec(Opcode::kLi).reads_ta);  // LI keeps the upper trits
  EXPECT_TRUE(changes_control_flow(Opcode::kJalr));
  EXPECT_FALSE(changes_control_flow(Opcode::kComp));
}

}  // namespace
}  // namespace art9::isa
