// .t9 program image serialisation: round-trips and malformed inputs.
#include "isa/image_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "isa/assembler.hpp"
#include "sim/functional_sim.hpp"

namespace art9::isa {
namespace {

const char* kSource = R"(
.equ BASE, 60
.data
.org BASE
vals: .word 7, -9841, 0
.text
main:
    LIMM T1, BASE
    LOAD T2, 0(T1)
loop:
    ADDI T2, -1
    MV   T3, T2
    COMP T3, T4
    BNE  T3, 0, loop
    STORE T2, 1(T1)
    HALT
)";

TEST(ImageIo, SaveLoadRoundTrip) {
  const Program original = assemble(kSource);
  const Program loaded = load_image(save_image(original));
  EXPECT_EQ(loaded.entry, original.entry);
  EXPECT_EQ(loaded.image, original.image);
  EXPECT_EQ(loaded.code, original.code);
  EXPECT_EQ(loaded.data, original.data);
  EXPECT_EQ(loaded.symbols, original.symbols);
}

TEST(ImageIo, LoadedImageRunsIdentically) {
  const Program original = assemble(kSource);
  const Program loaded = load_image(save_image(original));
  sim::FunctionalSimulator a(original);
  sim::FunctionalSimulator b(loaded);
  EXPECT_EQ(a.run().instructions, b.run().instructions);
  EXPECT_EQ(a.state().trf, b.state().trf);
  EXPECT_EQ(a.state().tdm.peek(61), b.state().tdm.peek(61));
}

TEST(ImageIo, FormatIsHumanAuditable) {
  const Program p = assemble("NOP\nHALT\n");
  const std::string text = save_image(p);
  EXPECT_NE(text.find(".t9 1"), std::string::npos);
  EXPECT_NE(text.find("entry 0"), std::string::npos);
  EXPECT_NE(text.find("code 0 "), std::string::npos);
  EXPECT_NE(text.find("code 1 "), std::string::npos);
}

TEST(ImageIo, CommentsAndBlankLines) {
  const Program p = load_image(
      ".t9 1\n"
      "# a comment\n"
      "entry 5\n"
      "\n"
      "code 5 000000000   # trailing comment\n");
  EXPECT_EQ(p.entry, 5);
  ASSERT_EQ(p.code.size(), 1u);
}

TEST(ImageIo, Errors) {
  EXPECT_THROW((void)load_image(std::string("entry 0\n")), ImageError);       // no header
  EXPECT_THROW((void)load_image(std::string(".t9 2\n")), ImageError);         // bad version
  EXPECT_THROW((void)load_image(std::string(".t9 1\ncode 0 ++\n")), ImageError);  // short trits
  EXPECT_THROW((void)load_image(std::string(".t9 1\ncode 0 ++x++++++\n")), ImageError);
  EXPECT_THROW((void)load_image(std::string(".t9 1\nbogus 1\n")), ImageError);
  EXPECT_THROW((void)load_image(std::string(".t9 1\nentry 0\ncode 1 000000000\n")),
               ImageError);  // gap: code not contiguous from entry
  EXPECT_THROW(
      (void)load_image(std::string(".t9 1\ncode 0 000000000\ncode 0 000000000\n")),
      ImageError);  // duplicate address
  // An undefined R-type func pattern (func = 13) must be rejected at load.
  EXPECT_THROW((void)load_image(std::string(".t9 1\ncode 0 --0000000\n")), ImageError);
}

TEST(ImageIo, FileRoundTrip) {
  const Program original = assemble(kSource);
  const std::string path = "/tmp/art9_image_io_test.t9";
  write_image_file(original, path);
  const Program loaded = read_image_file(path);
  EXPECT_EQ(loaded.image, original.image);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_image_file("/nonexistent/zzz.t9"), ImageError);
}

}  // namespace
}  // namespace art9::isa
