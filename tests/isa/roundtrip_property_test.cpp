// Round-trip property tests over the whole Table-I opcode space:
//   encode -> decode          is the identity on well-formed instructions,
//   disassemble -> assemble   is the identity on their machine words,
// with operands drawn from a seeded uniform generator, so the assembler,
// encoder, decoder and disassembler can never drift apart silently.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "isa/instruction.hpp"
#include "ternary/random.hpp"

namespace art9::isa {
namespace {

constexpr int kSamplesPerOpcode = 250;
constexpr uint32_t kSeed = 0x9a7e51;

/// A uniformly random well-formed instruction for `op`: only the fields
/// the opcode's format encodes are randomized (decode leaves the rest at
/// their defaults, and operator== compares every field).
Instruction random_instruction(Opcode op, std::mt19937& rng) {
  const OpcodeSpec& s = spec(op);
  std::uniform_int_distribution<int> reg(0, kNumRegisters - 1);
  std::uniform_int_distribution<int> imm(s.imm_min, s.imm_max);
  Instruction inst;
  inst.op = op;
  switch (s.format) {
    case Format::kRBinary:
    case Format::kRUnary:
      inst.ta = reg(rng);
      inst.tb = reg(rng);
      break;
    case Format::kImm3:
    case Format::kShiftImm:
    case Format::kLui:
    case Format::kLi:
    case Format::kJal:
      inst.ta = reg(rng);
      inst.imm = imm(rng);
      break;
    case Format::kBranch:
      inst.tb = reg(rng);
      inst.bcond = ternary::random_trit(rng);
      inst.imm = imm(rng);
      break;
    case Format::kJalr:
    case Format::kMem:
      inst.ta = reg(rng);
      inst.tb = reg(rng);
      inst.imm = imm(rng);
      break;
  }
  return inst;
}

TEST(RoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937 rng(kSeed);
  for (Opcode op : all_opcodes()) {
    for (int i = 0; i < kSamplesPerOpcode; ++i) {
      const Instruction inst = random_instruction(op, rng);
      const ternary::Word9 word = encode(inst);
      const Instruction decoded = decode(word);
      ASSERT_EQ(decoded, inst) << mnemonic(op) << " sample " << i << ": encoded "
                               << word.to_string() << " decoded to " << to_string(decoded)
                               << " from " << to_string(inst);
    }
  }
}

TEST(RoundTrip, DisassembleReassembleIsFixedPoint) {
  std::mt19937 rng(kSeed + 1);
  for (Opcode op : all_opcodes()) {
    for (int i = 0; i < kSamplesPerOpcode; ++i) {
      const Instruction inst = random_instruction(op, rng);
      const ternary::Word9 word = encode(inst);
      const std::string text = disassemble_word(word);
      Program program;
      ASSERT_NO_THROW(program = assemble(text))
          << mnemonic(op) << " sample " << i << ": could not re-assemble \"" << text << "\"";
      ASSERT_EQ(program.code.size(), 1u) << "\"" << text << "\"";
      EXPECT_EQ(program.code[0], inst)
          << mnemonic(op) << " sample " << i << ": \"" << text << "\" re-assembled to "
          << to_string(program.code[0]) << " instead of " << to_string(inst);
      ASSERT_EQ(program.image.size(), 1u);
      EXPECT_EQ(program.image[0], word) << "\"" << text << "\"";
      // One more lap: the listing of the re-assembled word must not move.
      EXPECT_EQ(disassemble_word(program.image[0]), text);
    }
  }
}

TEST(RoundTrip, EveryEncodingIsValid) {
  std::mt19937 rng(kSeed + 2);
  for (Opcode op : all_opcodes()) {
    for (int i = 0; i < kSamplesPerOpcode; ++i) {
      EXPECT_TRUE(is_valid_encoding(encode(random_instruction(op, rng))));
    }
  }
}

}  // namespace
}  // namespace art9::isa
