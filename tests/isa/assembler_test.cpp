// ART-9 assembler: syntax, labels, directives, pseudo-instructions and
// diagnostics.
#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/encoding.hpp"

namespace art9::isa {
namespace {

using ternary::kTritN;
using ternary::kTritZ;
using ternary::Word9;

TEST(Assembler, BasicProgram) {
  const Program p = assemble(R"(
; comment
    LI   T1, 5
    ADDI T1, 3       # another comment
    ADD  T1, T1
    HALT
)");
  ASSERT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[0], (Instruction{Opcode::kLi, 1, 0, kTritZ, 5}));
  EXPECT_EQ(p.code[1], (Instruction{Opcode::kAddi, 1, 0, kTritZ, 3}));
  EXPECT_EQ(p.code[2], (Instruction{Opcode::kAdd, 1, 1, kTritZ, 0}));
  EXPECT_EQ(p.code[3], Instruction::halt());
  EXPECT_EQ(p.entry, 0);
  EXPECT_EQ(p.image.size(), 4u);
  EXPECT_EQ(decode(p.image[0]), p.code[0]);
}

TEST(Assembler, AllFormats) {
  const Program p = assemble(R"(
    MV   T0, T1
    STI  T2, T3
    COMP T4, T5
    ANDI T6, -13
    SRI  T7, 8
    SLI  T8, 0
    LUI  T0, -40
    LI   T1, 121
    BEQ  T2, +, 3
    BNE  T3, -, -5
    JAL  T4, 10
    JALR T5, T6, -2
    LOAD T7, 13(T8)
    STORE T0, T1, -13
)");
  EXPECT_EQ(p.code.size(), 14u);
  EXPECT_EQ(p.code[8].bcond, ternary::kTritP);
  EXPECT_EQ(p.code[9].bcond, kTritN);
  EXPECT_EQ(p.code[12].imm, 13);
  EXPECT_EQ(p.code[12].tb, 8);
  EXPECT_EQ(p.code[13].imm, -13);
}

TEST(Assembler, LabelsAndBranchOffsets) {
  const Program p = assemble(R"(
start:
    ADDI T1, 1
loop:
    ADDI T1, -1
    COMP T2, T1
    BNE  T2, 0, loop
    JAL  T0, start
    HALT
end:
)");
  EXPECT_EQ(p.symbol("start"), 0);
  EXPECT_EQ(p.symbol("loop"), 1);
  EXPECT_EQ(p.symbol("end"), 6);
  // BNE at address 3 targeting 1 -> offset -2.
  EXPECT_EQ(p.code[3].imm, -2);
  // JAL at address 4 targeting 0 -> offset -4.
  EXPECT_EQ(p.code[4].imm, -4);
}

TEST(Assembler, EquAndExpressions) {
  const Program p = assemble(R"(
.equ N, 10
.equ TWO_N, N*2
    ADDI T1, N
    ADDI T2, TWO_N - N - 10 + 3
    ADDI T3, (N - 4) * 2
)");
  EXPECT_EQ(p.code[0].imm, 10);
  EXPECT_EQ(p.code[1].imm, 3);
  EXPECT_EQ(p.code[2].imm, 12);
}

TEST(Assembler, DataSection) {
  const Program p = assemble(R"(
.data
.org 100
table: .word 1, -2, 3
       .zero 2
value: .word 9841
.text
    LIMM T1, table
    LOAD T2, 0(T1)
    HALT
)");
  ASSERT_EQ(p.data.size(), 6u);
  EXPECT_EQ(p.data[0].address, 100);
  EXPECT_EQ(p.data[0].value.to_int(), 1);
  EXPECT_EQ(p.data[1].value.to_int(), -2);
  EXPECT_EQ(p.data[3].address, 103);
  EXPECT_TRUE(p.data[3].value.is_zero());
  EXPECT_EQ(p.symbol("value"), 105);
  EXPECT_EQ(p.data[5].value.to_int(), 9841);
}

TEST(Assembler, LimmExpansion) {
  const Program p = assemble(R"(
    LIMM T3, 1234
    LIMM T4, -9841
    LIMM T5, 0
)");
  ASSERT_EQ(p.code.size(), 6u);
  // Each LIMM is LUI hi ; LI lo with value = hi*243 + lo.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(p.code[static_cast<std::size_t>(2 * i)].op, Opcode::kLui);
    EXPECT_EQ(p.code[static_cast<std::size_t>(2 * i + 1)].op, Opcode::kLi);
  }
  EXPECT_EQ(p.code[0].imm * 243 + p.code[1].imm, 1234);
  EXPECT_EQ(p.code[2].imm * 243 + p.code[3].imm, -9841);
  EXPECT_EQ(p.code[4].imm * 243 + p.code[5].imm, 0);
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble("NOP\nHALT\n");
  EXPECT_EQ(p.code[0], Instruction::nop());
  EXPECT_EQ(p.code[1], Instruction::halt());
}

TEST(Assembler, OrgSetsEntry) {
  const Program p = assemble(R"(
.org 50
main:
    NOP
    HALT
)");
  EXPECT_EQ(p.entry, 50);
  EXPECT_EQ(p.symbol("main"), 50);
}

TEST(Assembler, BranchTargetAcrossLimm) {
  // Pass-1 sizing must account for LIMM's two words.
  const Program p = assemble(R"(
    BEQ T1, 0, after
    LIMM T2, 500
after:
    HALT
)");
  EXPECT_EQ(p.symbol("after"), 3);
  EXPECT_EQ(p.code[0].imm, 3);
}

TEST(Assembler, MemOperandForms) {
  const Program a = assemble("LOAD T1, 5(T2)\n");
  const Program b = assemble("LOAD T1, T2, 5\n");
  EXPECT_EQ(a.code[0], b.code[0]);
  const Program c = assemble("STORE T3, (T4)\n");
  EXPECT_EQ(c.code[0].imm, 0);
}

TEST(AssemblerErrors, Diagnostics) {
  EXPECT_THROW(assemble("BOGUS T1, T2\n"), AsmError);
  EXPECT_THROW(assemble("ADD T9, T1\n"), AsmError);
  EXPECT_THROW(assemble("ADDI T1, 99\n"), AsmError);          // imm3 range
  EXPECT_THROW(assemble("LUI T1, 41\n"), AsmError);           // imm4 range
  EXPECT_THROW(assemble("BEQ T1, 0, nowhere\n"), AsmError);   // undefined label
  EXPECT_THROW(assemble("x: NOP\nx: NOP\n"), AsmError);       // duplicate label
  EXPECT_THROW(assemble("ADD T1\n"), AsmError);               // operand count
  EXPECT_THROW(assemble(".data\nADD T1, T2\n"), AsmError);    // code in .data
  EXPECT_THROW(assemble(".word 5\n"), AsmError);              // .word in .text
  EXPECT_THROW(assemble(".bogus 1\n"), AsmError);             // unknown directive
  EXPECT_THROW(assemble("NOP\n.org 10\nNOP\n"), AsmError);    // .org after code
  EXPECT_THROW(assemble("LIMM T1, 10000\n"), AsmError);       // out of word range
  EXPECT_THROW(assemble("ADDI T1, UNDEF\n"), AsmError);       // undefined symbol
}

TEST(AssemblerErrors, LineNumbers) {
  try {
    (void)assemble("NOP\nNOP\nBOGUS\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Assembler, MemoryCellAccounting) {
  const Program p = assemble(R"(
    NOP
    NOP
    HALT
.data
.word 1, 2
)");
  // 3 instructions + 2 data words, 9 trits each (Fig. 5 accounting).
  EXPECT_EQ(p.memory_cells(), 45);
  EXPECT_EQ(p.code_trits(), 27);
}

}  // namespace
}  // namespace art9::isa
