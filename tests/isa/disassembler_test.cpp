// Disassembler round-trips and invalid-word rendering.
#include "isa/disassembler.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/encoding.hpp"

namespace art9::isa {
namespace {

TEST(Disassembler, RendersEveryOpcode) {
  const Program p = assemble(R"(
    MV T0, T1
    PTI T1, T2
    NTI T2, T3
    STI T3, T4
    AND T4, T5
    OR T5, T6
    XOR T6, T7
    ADD T7, T8
    SUB T8, T0
    SR T0, T1
    SL T1, T2
    COMP T2, T3
    ANDI T3, 1
    ADDI T4, -5
    SRI T5, 2
    SLI T6, 3
    LUI T7, 11
    LI T8, -77
    BEQ T0, +, 2
    BNE T1, -, -2
    JAL T2, 4
    JALR T3, T4, 1
    LOAD T5, 3(T6)
    STORE T7, -3(T8)
)");
  for (std::size_t i = 0; i < p.image.size(); ++i) {
    const std::string text = disassemble_word(p.image[i]);
    EXPECT_EQ(text, to_string(p.code[i]));
    // Disassembly must re-assemble to the same word (text round-trip).
    const Program again = assemble(text + "\n");
    EXPECT_EQ(again.image.at(0), p.image[i]) << text;
  }
}

TEST(Disassembler, InvalidWordRendering) {
  ternary::Word9 w = encode(Instruction{Opcode::kSri, 3, 0, ternary::kTritZ, 4});
  w.set(2, ternary::kTritP);  // corrupt the pad trit
  const std::string text = disassemble_word(w);
  EXPECT_TRUE(text.starts_with(".invalid"));
  EXPECT_NE(text.find(w.to_string()), std::string::npos);
}

TEST(Disassembler, ProgramListing) {
  const Program p = assemble(R"(
main:
    ADDI T1, 1
loop:
    BNE T1, 0, loop
    HALT
)");
  const std::string listing = disassemble(p);
  EXPECT_NE(listing.find("main:"), std::string::npos);
  EXPECT_NE(listing.find("loop:"), std::string::npos);
  EXPECT_NE(listing.find("ADDI T1, 1"), std::string::npos);
  EXPECT_NE(listing.find("BNE T1, 0, 0"), std::string::npos);  // resolved offset
}

}  // namespace
}  // namespace art9::isa
