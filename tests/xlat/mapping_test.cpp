// Instruction mapping: every supported rv32 construct translates to an
// ART-9 program with identical observable behaviour; unsupported ones
// raise TranslationError with the documented contract message.
#include "xlat/mapping.hpp"

#include <gtest/gtest.h>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/functional_sim.hpp"
#include "xlat/framework.hpp"

namespace art9::xlat {
namespace {

/// Runs `source` on both ISAs and returns (rv32 sim, art9 sim, result).
struct RunPair {
  rv32::Rv32Simulator rv;
  sim::FunctionalSimulator t9;
  TranslationResult xlat;
};

RunPair run_both(const std::string& source) {
  const rv32::Rv32Program rp = rv32::assemble_rv32(source);
  SoftwareFramework framework;
  TranslationResult result = framework.translate(rp);
  RunPair pair{rv32::Rv32Simulator(rp), sim::FunctionalSimulator(result.program),
               std::move(result)};
  EXPECT_TRUE(pair.rv.run().halted);
  EXPECT_EQ(pair.t9.run().halt, sim::HaltReason::kHalted);
  return pair;
}

/// The translated value of rv32 register `reg`.
int64_t art9_value(const RunPair& pair, int reg) {
  const Location& loc = pair.xlat.location(reg);
  switch (loc.kind) {
    case Location::Kind::kZero:
      return 0;
    case Location::Kind::kReg:
    case Location::Kind::kLink:
      return pair.t9.reg_int(loc.reg);
    case Location::Kind::kSpill:
      return pair.t9.state().tdm.peek(loc.slot).to_int();
  }
  return 0;
}

void expect_reg(const RunPair& pair, int reg) {
  EXPECT_EQ(art9_value(pair, reg), static_cast<int32_t>(pair.rv.reg(reg)))
      << "rv32 register x" << reg;
}

TEST(Mapping, AddSubChains) {
  auto pair = run_both(R"(
    li   a0, 1200
    li   a1, -345
    add  a2, a0, a1
    sub  a3, a0, a1
    add  a0, a0, a0
    sub  a1, a1, a0     ; rd == rs1
    ebreak
)");
  for (int r : {10, 11, 12, 13}) expect_reg(pair, r);
}

TEST(Mapping, RdAliasesRs2NonCommutative) {
  auto pair = run_both(R"(
    li   a0, 100
    li   a1, 33
    sub  a1, a0, a1     ; rd == rs2: needs the scratch path
    ebreak
)");
  expect_reg(pair, 11);
  EXPECT_EQ(art9_value(pair, 11), 67);
}

TEST(Mapping, NegViaSti) {
  auto pair = run_both("li a0, 4321\nsub a1, zero, a0\nebreak\n");
  EXPECT_EQ(art9_value(pair, 11), -4321);
}

TEST(Mapping, BooleanLogic) {
  auto pair = run_both(R"(
    li   a0, 1
    li   a1, 0
    and  a2, a0, a1
    or   a3, a0, a1
    xor  a4, a0, a1
    xor  a5, a0, a0
    andi t0, a0, 1
    ori  t1, a1, 0
    ebreak
)");
  for (int r : {12, 13, 14, 15, 5, 6}) expect_reg(pair, r);
}

TEST(Mapping, NonBooleanMaskRejected) {
  const auto program = rv32::assemble_rv32("andi a0, a0, 255\nebreak\n");
  SoftwareFramework framework;
  EXPECT_THROW((void)framework.translate(program), TranslationError);
}

TEST(Mapping, SetLessThan) {
  auto pair = run_both(R"(
    li   a0, -5
    li   a1, 3
    slt  a2, a0, a1
    slt  a3, a1, a0
    slt  a4, a0, a0
    slti a5, a1, 100
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), 1);
  EXPECT_EQ(art9_value(pair, 13), 0);
  EXPECT_EQ(art9_value(pair, 14), 0);
  EXPECT_EQ(art9_value(pair, 15), 1);
}

TEST(Mapping, ShiftLeftStrengthReduction) {
  auto pair = run_both(R"(
    li   a0, 17
    slli a1, a0, 1
    slli a2, a0, 3
    slli a3, a0, 0
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 11), 34);
  EXPECT_EQ(art9_value(pair, 12), 136);
  EXPECT_EQ(art9_value(pair, 13), 17);
}

TEST(Mapping, RightShiftRejected) {
  SoftwareFramework framework;
  EXPECT_THROW((void)framework.translate(rv32::assemble_rv32("srli a0, a0, 1\nebreak\n")),
               TranslationError);
  EXPECT_THROW((void)framework.translate(rv32::assemble_rv32("srai a0, a0, 1\nebreak\n")),
               TranslationError);
  EXPECT_THROW((void)framework.translate(rv32::assemble_rv32("sll a0, a0, a1\nebreak\n")),
               TranslationError);
}

TEST(Mapping, ByteAccessRejected) {
  SoftwareFramework framework;
  EXPECT_THROW((void)framework.translate(rv32::assemble_rv32("lb a0, 0(a1)\nebreak\n")),
               TranslationError);
  EXPECT_THROW((void)framework.translate(rv32::assemble_rv32("sb a0, 0(a1)\nebreak\n")),
               TranslationError);
}

TEST(Mapping, DivAndRemViaRuntimeRoutine) {
  auto pair = run_both(R"(
    li   a0, 252
    li   a1, 10
    div  a2, a0, a1
    rem  a3, a0, a1
    li   a4, -252
    div  a5, a4, a1
    rem  t0, a4, a1
    li   t1, -10
    div  t2, a0, t1
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), 25);
  EXPECT_EQ(art9_value(pair, 13), 2);
  EXPECT_EQ(art9_value(pair, 15), -25);   // truncation toward zero
  EXPECT_EQ(art9_value(pair, 5), -2);     // remainder follows the dividend
  EXPECT_EQ(art9_value(pair, 7), -25);
  EXPECT_EQ(pair.xlat.program.symbols.count("__divmod"), 1u);
  for (int r : {12, 13, 15, 5, 7}) expect_reg(pair, r);
}

TEST(Mapping, DivisionByZeroMatchesRiscv) {
  auto pair = run_both(R"(
    li   a0, 77
    li   a1, 0
    div  a2, a0, a1     ; -> -1
    rem  a3, a0, a1     ; -> dividend
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), -1);
  EXPECT_EQ(art9_value(pair, 13), 77);
  for (int r : {12, 13}) expect_reg(pair, r);
}

TEST(Mapping, DivisionEdgeCases) {
  auto pair = run_both(R"(
    li   a0, 9841       ; full-range dividend
    li   a1, 1
    div  a2, a0, a1
    li   a1, 9841       ; huge divisor path
    div  a3, a0, a1
    rem  a4, a0, a1
    li   a0, 5000
    li   a1, 4000       ; huge-divisor path with quotient 1
    div  a5, a0, a1
    rem  t0, a0, a1
    li   a0, 3
    li   a1, 100        ; |b| > |a|
    div  t1, a0, a1
    rem  t2, a0, a1
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), 9841);
  EXPECT_EQ(art9_value(pair, 13), 1);
  EXPECT_EQ(art9_value(pair, 14), 0);
  EXPECT_EQ(art9_value(pair, 15), 1);
  EXPECT_EQ(art9_value(pair, 5), 1000);
  EXPECT_EQ(art9_value(pair, 6), 0);
  EXPECT_EQ(art9_value(pair, 7), 3);
}

TEST(Mapping, Branches) {
  auto pair = run_both(R"(
    li   a0, 5
    li   a1, 9
    li   a2, 0
    blt  a0, a1, less
    li   a2, 111
less:
    bge  a1, a0, done
    li   a2, 222
done:
    beq  a0, a0, eq
    li   a2, 333
eq:
    bne  a0, a1, neq
    li   a2, 444
neq:
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), 0);
}

TEST(Mapping, LoopSum) {
  auto pair = run_both(R"(
    li   a0, 0
    li   a1, 1
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    li   t0, 50
    ble  a1, t0, loop
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 10), 1275);
}

TEST(Mapping, LoadStoreWordGranular) {
  auto pair = run_both(R"(
.data
.org 40
vals: .word 77, -88, 99
.text
    li   a0, 40
    lw   a1, 0(a0)
    lw   a2, 4(a0)
    add  a3, a1, a2
    sw   a3, 8(a0)
    lw   a4, 8(a0)
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 13), -11);
  EXPECT_EQ(art9_value(pair, 14), -11);
  // The data layout maps rv32 byte address A to TDM word address A.
  EXPECT_EQ(pair.t9.state().tdm.peek(48).to_int(), -11);
  EXPECT_EQ(pair.rv.load_word(48), static_cast<uint32_t>(-11));
}

TEST(Mapping, WideMemoryOffsets) {
  auto pair = run_both(R"(
    li   a0, 0
    li   a1, 4242
    sw   a1, 800(a0)    ; offset exceeds the 3-trit immediate
    lw   a2, 800(a0)
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), 4242);
}

TEST(Mapping, MulViaRuntimeRoutine) {
  auto pair = run_both(R"(
    li   a0, 123
    li   a1, -45
    mul  a2, a0, a1
    li   a3, 7
    mul  a3, a3, a3
    ebreak
)");
  EXPECT_EQ(art9_value(pair, 12), -5535);
  EXPECT_EQ(art9_value(pair, 13), 49);
  EXPECT_EQ(pair.xlat.program.symbols.count("__mul"), 1u);
}

TEST(Mapping, CallAndReturn) {
  auto pair = run_both(R"(
    li   a0, 5
    call double_it
    call double_it
    ebreak
double_it:
    add  a0, a0, a0
    ret
)");
  EXPECT_EQ(art9_value(pair, 10), 20);
}

TEST(Mapping, MulInsideCallPreservesRa) {
  auto pair = run_both(R"(
    li   a0, 6
    call square
    addi a0, a0, 1
    ebreak
square:
    mul  a0, a0, a0
    ret
)");
  EXPECT_EQ(art9_value(pair, 10), 37);
}

TEST(Mapping, SpilledRegistersWork) {
  // Nine live registers force several into TDM spill slots.
  auto pair = run_both(R"(
    li a0, 1
    li a1, 2
    li a2, 3
    li a3, 4
    li a4, 5
    li a5, 6
    li t0, 7
    li t1, 8
    li t2, 9
    add a0, a0, t2
    add a1, a1, t1
    add a2, a2, t0
    add a3, a3, a5
    add a4, a4, a4
    ebreak
)");
  EXPECT_GT(pair.xlat.stats.spilled_registers, 0u);
  EXPECT_EQ(art9_value(pair, 10), 10);
  EXPECT_EQ(art9_value(pair, 11), 10);
  EXPECT_EQ(art9_value(pair, 12), 10);
  EXPECT_EQ(art9_value(pair, 13), 10);
  EXPECT_EQ(art9_value(pair, 14), 10);
  for (int r : {15, 5, 6, 7}) expect_reg(pair, r);
}

TEST(Mapping, LuiSmallValues) {
  auto pair = run_both("lui a0, 2\nlui a1, -1\nebreak\n");
  EXPECT_EQ(art9_value(pair, 10), 8192);
  EXPECT_EQ(art9_value(pair, 11), -4096);
}

TEST(Mapping, LuiOutOfRangeRejected) {
  SoftwareFramework framework;
  EXPECT_THROW((void)framework.translate(rv32::assemble_rv32("lui a0, 3\nebreak\n")),
               TranslationError);
}

TEST(Mapping, DataOutOfRangeRejected) {
  SoftwareFramework framework;
  EXPECT_THROW(
      (void)framework.translate(rv32::assemble_rv32(".data\n.word 10000\n.text\nebreak\n")),
      TranslationError);
}

TEST(Mapping, StatsAreFilled) {
  auto pair = run_both("li a0, 5\nadd a0, a0, a0\nebreak\n");
  EXPECT_EQ(pair.xlat.stats.rv32_instructions, 3u);
  EXPECT_GT(pair.xlat.stats.final_instructions, 3u);
  EXPECT_GT(pair.xlat.stats.expansion_ratio(), 1.0);
}

}  // namespace
}  // namespace art9::xlat
