// Register renaming: pinned registers, frequency-based assignment, spills.
#include "xlat/regalloc.hpp"

#include <gtest/gtest.h>

#include "rv32/rv32_assembler.hpp"

namespace art9::xlat {
namespace {

TEST(RegAlloc, PinnedRegisters) {
  const auto program = rv32::assemble_rv32("add a0, a1, a2\nebreak\n");
  const RegisterMap map = RegisterMap::build(program);
  EXPECT_EQ(map.location(0).kind, Location::Kind::kZero);
  EXPECT_EQ(map.location(0).reg, kZeroReg);
  EXPECT_EQ(map.location(1).kind, Location::Kind::kLink);
  EXPECT_EQ(map.location(1).reg, kLinkReg);
}

TEST(RegAlloc, HotRegistersGetAssignableSlots) {
  // a0 used most often, then a1, then a2.
  const auto program = rv32::assemble_rv32(R"(
    add a0, a0, a0
    add a0, a0, a1
    add a1, a1, a2
    ebreak
)");
  const RegisterMap map = RegisterMap::build(program);
  const Location& a0 = map.location(10);
  const Location& a1 = map.location(11);
  const Location& a2 = map.location(12);
  EXPECT_EQ(a0.kind, Location::Kind::kReg);
  EXPECT_EQ(a0.reg, kFirstAssignable);  // hottest register -> T2
  EXPECT_EQ(a1.kind, Location::Kind::kReg);
  EXPECT_EQ(a2.kind, Location::Kind::kReg);
  EXPECT_EQ(map.spilled_count(), 0u);
}

TEST(RegAlloc, SpillsBeyondFiveRegisters) {
  const auto program = rv32::assemble_rv32(R"(
    add a0, a0, a0
    add a1, a1, a1
    add a2, a2, a2
    add a3, a3, a3
    add a4, a4, a4
    add a5, a5, a5
    add t0, t0, t0
    ebreak
)");
  const RegisterMap map = RegisterMap::build(program);
  int in_regs = 0;
  int in_spills = 0;
  for (int r : {10, 11, 12, 13, 14, 15, 5}) {
    const Location& l = map.location(r);
    if (l.kind == Location::Kind::kReg) ++in_regs;
    if (l.kind == Location::Kind::kSpill) {
      ++in_spills;
      EXPECT_LE(l.slot, kFirstSpillSlot);
      EXPECT_GT(l.slot, kFirstSpillSlot - kNumSpillSlots);
    }
  }
  EXPECT_EQ(in_regs, kNumAssignable);
  EXPECT_EQ(in_spills, 2);
  EXPECT_EQ(map.spilled_count(), 2u);
}

TEST(RegAlloc, UnusedRegistersStayZeroMapped) {
  const auto program = rv32::assemble_rv32("nop\nebreak\n");
  const RegisterMap map = RegisterMap::build(program);
  // x5 never appears: default location is the zero kind (never read/written).
  EXPECT_EQ(map.location(5).kind, Location::Kind::kZero);
}

TEST(RegAlloc, TooManyRegistersThrows) {
  // 15 live registers > 5 assignable + 9 spill slots.
  std::string source;
  for (int i = 0; i < 15; ++i) {
    std::string r = std::to_string(5 + i);
    r.insert(0, 1, 'x');
    source.append("add ").append(r).append(", ").append(r).append(", ").append(r).append("\n");
  }
  source += "ebreak\n";
  const auto program = rv32::assemble_rv32(source);
  EXPECT_THROW(RegisterMap::build(program), TranslationError);
}

TEST(RegAlloc, LocationToString) {
  const auto program = rv32::assemble_rv32("add a0, a0, a0\nebreak\n");
  const RegisterMap map = RegisterMap::build(program);
  EXPECT_EQ(map.location(0).to_string(), "zero(T7)");
  EXPECT_EQ(map.location(1).to_string(), "link(T8)");
  EXPECT_EQ(map.location(10).to_string(), "T2");
}

}  // namespace
}  // namespace art9::xlat
