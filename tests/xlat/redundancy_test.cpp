// Redundancy checking: each peephole rule in isolation, label pinning, and
// whole-program semantic preservation.
#include "xlat/redundancy.hpp"

#include <gtest/gtest.h>

#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/functional_sim.hpp"
#include "xlat/framework.hpp"
#include "xlat/regalloc.hpp"

namespace art9::xlat {
namespace {

using isa::Instruction;
using isa::Opcode;
using ternary::kTritZ;

XInst xi(Instruction inst) { return XInst(inst); }

TEST(Redundancy, DropsSelfMove) {
  XProgram p;
  p.code.push_back(xi({Opcode::kMv, 3, 3, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kAddi, 1, 0, kTritZ, 5}));
  const RedundancyStats stats = remove_redundancies(p);
  EXPECT_EQ(stats.removed, 1u);
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].inst.op, Opcode::kAddi);
}

TEST(Redundancy, DropsAddiZero) {
  XProgram p;
  p.code.push_back(xi({Opcode::kAddi, 2, 0, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kAddi, 2, 0, kTritZ, 3}));
  const RedundancyStats stats = remove_redundancies(p);
  EXPECT_EQ(stats.removed, 1u);
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].inst.imm, 3);
}

TEST(Redundancy, FusesScratchCopyPattern) {
  // MV T0,T3 ; ADD T0,T4 ; MV T3,T0  ->  ADD T3,T4.
  XProgram p;
  p.code.push_back(xi({Opcode::kMv, kScratch0, 3, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kAdd, kScratch0, 4, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kMv, 3, kScratch0, kTritZ, 0}));
  p.code.push_back(xi(Instruction::halt()));
  const RedundancyStats stats = remove_redundancies(p);
  EXPECT_EQ(stats.removed, 2u);
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].inst, (Instruction{Opcode::kAdd, 3, 4, kTritZ, 0}));
}

TEST(Redundancy, ScratchPatternBlockedByLaterRead) {
  // The scratch survives past the write-back: fusing would be unsound.
  XProgram p;
  p.code.push_back(xi({Opcode::kMv, kScratch0, 3, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kAdd, kScratch0, 4, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kMv, 3, kScratch0, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kAdd, 5, kScratch0, kTritZ, 0}));  // reads T0!
  const std::size_t before = p.code.size();
  (void)remove_redundancies(p);
  EXPECT_EQ(p.code.size(), before);
}

TEST(Redundancy, ForwardsScratchMoveChain) {
  // MV T1,B ; MV D,T1 -> MV D,B when T1 dies.
  XProgram p;
  p.code.push_back(xi({Opcode::kMv, kScratch1, 5, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kMv, 6, kScratch1, kTritZ, 0}));
  p.code.push_back(xi({Opcode::kLui, kScratch1, 0, kTritZ, 0}));  // kills T1
  (void)remove_redundancies(p);
  ASSERT_GE(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].inst, (Instruction{Opcode::kMv, 6, 5, kTritZ, 0}));
}

TEST(Redundancy, CombinesAddiPairs) {
  XProgram p;
  p.code.push_back(xi({Opcode::kAddi, 4, 0, kTritZ, 6}));
  p.code.push_back(xi({Opcode::kAddi, 4, 0, kTritZ, 5}));
  p.code.push_back(xi(Instruction::halt()));
  const RedundancyStats stats = remove_redundancies(p);
  EXPECT_EQ(stats.combined, 1u);
  EXPECT_EQ(p.code[0].inst.imm, 11);
}

TEST(Redundancy, DoesNotCombineBeyondImmRange) {
  XProgram p;
  p.code.push_back(xi({Opcode::kAddi, 4, 0, kTritZ, 10}));
  p.code.push_back(xi({Opcode::kAddi, 4, 0, kTritZ, 10}));
  (void)remove_redundancies(p);
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Redundancy, DropsDeadPureWrite) {
  // LUI T3,x immediately overwritten by MV T3,T5.
  XProgram p;
  p.code.push_back(xi({Opcode::kLui, 3, 0, kTritZ, 7}));
  p.code.push_back(xi({Opcode::kMv, 3, 5, kTritZ, 0}));
  const RedundancyStats stats = remove_redundancies(p);
  EXPECT_EQ(stats.removed, 1u);
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].inst.op, Opcode::kMv);
}

TEST(Redundancy, KeepsWriteWhenOverwriterReadsIt) {
  // LUI T3 ; ADD T3,T4 — the ADD reads T3, so the LUI is live.
  XProgram p;
  p.code.push_back(xi({Opcode::kLui, 3, 0, kTritZ, 7}));
  p.code.push_back(xi({Opcode::kAdd, 3, 4, kTritZ, 0}));
  (void)remove_redundancies(p);
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Redundancy, DropsBranchToNextInstruction) {
  XProgram p;
  p.code.push_back(xi({Opcode::kBeq, 0, 3, kTritZ, 0}));
  p.code.back().target = "next";
  XInst target(Instruction::nop());
  target.labels.push_back("next");
  target.inst = Instruction{Opcode::kAddi, 1, 0, kTritZ, 2};
  p.code.push_back(target);
  const RedundancyStats stats = remove_redundancies(p);
  EXPECT_EQ(stats.removed, 1u);
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].inst.op, Opcode::kAddi);
}

TEST(Redundancy, LabelledInstructionsMigrateLabels) {
  XProgram p;
  XInst dead({Opcode::kMv, 2, 2, kTritZ, 0});
  dead.labels.push_back("entry");
  p.code.push_back(dead);
  p.code.push_back(xi({Opcode::kAddi, 1, 0, kTritZ, 1}));
  (void)remove_redundancies(p);
  ASSERT_EQ(p.code.size(), 1u);
  ASSERT_EQ(p.code[0].labels.size(), 1u);
  EXPECT_EQ(p.code[0].labels[0], "entry");
}

TEST(Redundancy, LastInstructionWithLabelsIsKept) {
  XProgram p;
  XInst dead({Opcode::kMv, 2, 2, kTritZ, 0});
  dead.labels.push_back("end");
  p.code.push_back(dead);
  (void)remove_redundancies(p);
  EXPECT_EQ(p.code.size(), 1u);  // nothing to migrate onto: keep it
}

TEST(Redundancy, RulesDontFireAcrossLabels) {
  // The ADDI pair must not merge: a branch may land between them.
  XProgram p;
  p.code.push_back(xi({Opcode::kAddi, 4, 0, kTritZ, 6}));
  XInst second({Opcode::kAddi, 4, 0, kTritZ, 5});
  second.labels.push_back("target");
  p.code.push_back(second);
  (void)remove_redundancies(p);
  EXPECT_EQ(p.code.size(), 2u);
}

// Whole-program check: translation with the pass on and off must agree on
// every benchmark-style output while the pass strictly shrinks code.
TEST(Redundancy, PreservesSemanticsAndShrinksCode) {
  const std::string source = R"(
    li   a0, 5
    addi a0, a0, 4      ; consecutive ADDIs merge (rule 5)
    addi a0, a0, 4
    li   a1, 300        ; dead LIMM pair: overwritten before any read
    li   a1, 400
    add  a2, a0, a1
    sw   a2, 100(zero)
    ebreak
)";
  const rv32::Rv32Program rp = rv32::assemble_rv32(source);

  SoftwareFrameworkOptions with;
  SoftwareFrameworkOptions without;
  without.redundancy_checking = false;
  const TranslationResult a = SoftwareFramework(with).translate(rp);
  const TranslationResult b = SoftwareFramework(without).translate(rp);

  EXPECT_LT(a.program.code.size(), b.program.code.size());
  EXPECT_GT(a.stats.removed_redundant, 0u);

  sim::FunctionalSimulator sa(a.program);
  sim::FunctionalSimulator sb(b.program);
  EXPECT_EQ(sa.run().halt, sim::HaltReason::kHalted);
  EXPECT_EQ(sb.run().halt, sim::HaltReason::kHalted);
  EXPECT_EQ(sa.state().tdm.peek(100).to_int(), 413);
  EXPECT_EQ(sb.state().tdm.peek(100).to_int(), 413);
}

}  // namespace
}  // namespace art9::xlat
