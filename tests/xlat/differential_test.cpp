// End-to-end translation property test: random rv32 programs from the
// mapping contract run identically on the rv32 simulator and (after
// translation) on the ART-9 simulators — registers, memory, everything.
#include <gtest/gtest.h>

#include <random>

#include "core/progen.hpp"
#include "rv32/rv32_assembler.hpp"
#include "rv32/rv32_sim.hpp"
#include "sim/functional_sim.hpp"
#include "sim/pipeline.hpp"
#include "xlat/framework.hpp"

namespace art9::xlat {
namespace {

int64_t art9_value(const TranslationResult& xlat, const sim::ArchState& state, int reg) {
  const Location& loc = xlat.location(reg);
  switch (loc.kind) {
    case Location::Kind::kZero:
      return 0;
    case Location::Kind::kReg:
    case Location::Kind::kLink:
      return state.trf.read(loc.reg).to_int();
    case Location::Kind::kSpill:
      return state.tdm.peek(loc.slot).to_int();
  }
  return 0;
}

void check_seed(uint64_t seed, const core::Rv32GenOptions& options) {
  std::mt19937_64 rng(seed);
  const std::string source = core::generate_rv32_source(rng, options);

  const rv32::Rv32Program rp = rv32::assemble_rv32(source);
  rv32::Rv32Simulator rv(rp);
  ASSERT_TRUE(rv.run(5'000'000).halted) << "seed=" << seed;

  SoftwareFramework framework;
  const TranslationResult xlat = framework.translate(rp);

  sim::FunctionalSimulator t9(xlat.program);
  ASSERT_EQ(t9.run(5'000'000).halt, sim::HaltReason::kHalted) << "seed=" << seed;

  // Every rv32 register the generator uses (x0, plus the pool) must match.
  for (int reg : {0, 10, 11, 12, 13, 14, 5, 6, 7, 18, 19}) {
    EXPECT_EQ(art9_value(xlat, t9.state(), reg), static_cast<int32_t>(rv.reg(reg)))
        << "seed=" << seed << " register x" << reg << "\nsource:\n" << source;
  }
  // Memory slots (rv32 byte address A <-> TDM address A).
  for (int slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(t9.state().tdm.peek(slot * 4).to_int(),
              static_cast<int32_t>(rv.load_word(static_cast<uint32_t>(slot * 4))))
        << "seed=" << seed << " slot " << slot;
  }

  // The pipelined core must agree with the functional model on the same
  // translated program (ties the whole stack together).
  sim::PipelineSimulator pipe(xlat.program);
  ASSERT_EQ(pipe.run().halt, sim::HaltReason::kHalted) << "seed=" << seed;
  EXPECT_EQ(pipe.state().trf, t9.state().trf) << "seed=" << seed;
}

TEST(XlatDifferential, RandomProgramsNoSpills) {
  core::Rv32GenOptions options;
  options.max_registers = 5;
  for (uint64_t seed = 1; seed <= 60; ++seed) check_seed(seed * 31, options);
}

TEST(XlatDifferential, RandomProgramsWithSpills) {
  core::Rv32GenOptions options;
  options.max_registers = 10;  // forces spill slots
  for (uint64_t seed = 1; seed <= 60; ++seed) check_seed(seed * 97, options);
}

TEST(XlatDifferential, RandomProgramsWithoutMemory) {
  core::Rv32GenOptions options;
  options.with_memory_ops = false;
  options.with_mul = false;
  for (uint64_t seed = 1; seed <= 40; ++seed) check_seed(seed * 151, options);
}

TEST(XlatDifferential, RandomProgramsWithDivision) {
  core::Rv32GenOptions options;
  options.with_div = true;
  options.max_registers = 8;
  for (uint64_t seed = 1; seed <= 60; ++seed) check_seed(seed * 211, options);
}

TEST(XlatDifferential, LongPrograms) {
  core::Rv32GenOptions options;
  options.min_length = 150;
  options.max_length = 400;
  options.max_registers = 9;
  for (uint64_t seed = 1; seed <= 20; ++seed) check_seed(seed * 733, options);
}

}  // namespace
}  // namespace art9::xlat
